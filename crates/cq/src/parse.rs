//! A small Datalog-style parser for Boolean conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query   := [ name " :- " ] body | body
//! body    := atom { "," atom }
//! atom    := relname [ "^x" ] "(" var { "," var } ")"
//! relname := identifier starting with an uppercase letter
//! var     := identifier starting with a lowercase letter
//! ```
//!
//! Exogenous atoms use the `^x` marker, mirroring the paper's superscript-x
//! notation, e.g. `q_rats' :- R^x(x,y), A(x), T^x(z,x), S(y,z)`.

use crate::query::{Query, QueryBuilder};
use std::fmt;

/// Error produced when parsing a query string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset in the input at which the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn identifier(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected identifier"));
        }
        Ok(&self.input[start..self.pos])
    }
}

/// Parses a query from its textual representation.
///
/// ```
/// use cq::parse_query;
/// let q = parse_query("q_rats :- R(x,y), A(x), T(z,x), S(y,z)").unwrap();
/// assert_eq!(q.name(), Some("q_rats"));
/// assert_eq!(q.num_atoms(), 4);
///
/// let q = parse_query("A(x), R(x,y), R(y,z)").unwrap();
/// assert_eq!(q.num_vars(), 3);
///
/// let q = parse_query("B(y), R^x(x,y)").unwrap();
/// assert!(q.atom(1).exogenous);
/// ```
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(input);
    p.skip_ws();
    if p.peek().is_none() {
        return Err(p.error("empty query"));
    }

    // Optional "name :- " prefix: try to read an identifier followed by
    // optional "()" and ":-"; if that fails, rewind and treat the whole input
    // as a body.
    let mut builder = QueryBuilder::new();
    let checkpoint = p.pos;
    if let Ok(ident) = p.identifier() {
        p.skip_ws();
        // optional head parentheses `q()`
        if p.eat(b'(') {
            p.skip_ws();
            if !p.eat(b')') {
                // not a head, rewind
                p.pos = checkpoint;
            } else {
                p.skip_ws();
            }
        }
        if p.pos != checkpoint {
            if p.eat(b':') {
                if p.eat(b'-') {
                    builder = builder.name(ident);
                    p.skip_ws();
                } else {
                    return Err(p.error("expected '-' after ':'"));
                }
            } else {
                // No ":-": the identifier was the first relation name.
                p.pos = checkpoint;
            }
        }
    } else {
        p.pos = checkpoint;
    }

    // Body: one or more atoms separated by commas.
    loop {
        p.skip_ws();
        let rel_start = p.pos;
        let rel = p.identifier()?;
        if !rel.starts_with(|c: char| c.is_ascii_uppercase()) {
            p.pos = rel_start;
            return Err(p.error(format!(
                "relation name '{rel}' must start with an uppercase letter"
            )));
        }
        // Exogenous marker `^x`
        let mut exo = false;
        if p.eat(b'^') {
            let m = p.identifier()?;
            if m != "x" && m != "X" {
                return Err(p.error(format!("unknown atom marker '^{m}', expected '^x'")));
            }
            exo = true;
        }
        p.skip_ws();
        p.expect(b'(')?;
        let mut args: Vec<String> = Vec::new();
        loop {
            p.skip_ws();
            let v = p.identifier()?;
            if !v.starts_with(|c: char| c.is_ascii_lowercase()) {
                return Err(p.error(format!("variable '{v}' must start with a lowercase letter")));
            }
            args.push(v.to_string());
            p.skip_ws();
            if p.eat(b',') {
                continue;
            }
            p.expect(b')')?;
            break;
        }
        let arg_refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        builder = if exo {
            builder.exogenous_atom(rel, &arg_refs)
        } else {
            builder.atom(rel, &arg_refs)
        };

        p.skip_ws();
        if p.eat(b',') {
            continue;
        }
        break;
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing input after query body"));
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_named_query() {
        let q = parse_query("q_triangle :- R(x,y), S(y,z), T(z,x)").unwrap();
        assert_eq!(q.name(), Some("q_triangle"));
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.num_vars(), 3);
        assert!(q.is_self_join_free());
    }

    #[test]
    fn parses_headless_body() {
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        assert_eq!(q.name(), None);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.self_join_relations().len(), 1);
    }

    #[test]
    fn parses_head_with_parens() {
        let q = parse_query("q() :- R(x,y), R(y,z)").unwrap();
        assert_eq!(q.name(), Some("q"));
        assert_eq!(q.num_atoms(), 2);
    }

    #[test]
    fn parses_exogenous_marker() {
        let q = parse_query("q :- R^x(x,y), A(x), T^x(z,x), S(y,z)").unwrap();
        assert!(q.atom(0).exogenous);
        assert!(!q.atom(1).exogenous);
        assert!(q.atom(2).exogenous);
        assert_eq!(q.exogenous_atoms(), vec![0, 2]);
    }

    #[test]
    fn parses_repeated_variables() {
        let q = parse_query("R(x,x), R(x,y), A(y)").unwrap();
        assert!(q.atom(0).has_repeated_var());
        assert_eq!(q.num_vars(), 2);
    }

    #[test]
    fn roundtrips_through_display() {
        let text = "q_vc :- R(x), S(x,y), R(y)";
        let q = parse_query(text).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_query("   ").is_err());
    }

    #[test]
    fn rejects_lowercase_relation() {
        let err = parse_query("r(x,y)").unwrap_err();
        assert!(err.message.contains("uppercase"));
    }

    #[test]
    fn rejects_uppercase_variable() {
        let err = parse_query("R(X,y)").unwrap_err();
        assert!(err.message.contains("lowercase"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("R(x,y) extra").is_err());
    }

    #[test]
    fn rejects_unknown_marker() {
        assert!(parse_query("R^y(x,y)").is_err());
    }

    #[test]
    fn rejects_missing_paren() {
        assert!(parse_query("R(x,y), S(x").is_err());
    }

    #[test]
    fn error_display_mentions_position() {
        let err = parse_query("R(x,y) junk").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("parse error"));
    }
}
