//! Canonical forms for conjunctive queries: shape identity up to variable
//! renaming and atom reordering.
//!
//! Two queries have the same *shape* when one can be turned into the other by
//! bijectively renaming variables and permuting atoms, keeping relation
//! *names* and the endogenous/exogenous flags fixed. Shape is exactly the
//! granularity at which resilience classification can be shared: production
//! traffic from millions of users collapses into a handful of shapes, and a
//! plan cache keyed on shape (see `resilience_core::plancache`) answers
//! `compile` for an already-seen shape without re-running classification.
//!
//! [`canonicalize`] computes a deterministic representative of a query's
//! shape class:
//!
//! 1. **Color refinement** (Weisfeiler–Leman style) on the query hypergraph:
//!    variables start with a color derived from their occurrence profile
//!    (relation name, exogenous flag, argument position) and are iteratively
//!    refined through atom signatures until the partition stabilizes.
//! 2. **Individualization–refinement**: while the partition has a
//!    non-singleton color class, the search individualizes each member of an
//!    invariantly chosen target class in turn and recurses. Every leaf of
//!    the search induces a total variable order; the candidate it produces
//!    is the atom list ranked under that order and sorted. The
//!    lexicographically smallest candidate over all leaves is the canonical
//!    form — an isomorphism invariant, because the candidate *set* is one.
//! 3. The winning candidate is rebuilt as a [`Query`] with variables
//!    `x0, x1, …` numbered by first occurrence and atoms in candidate order,
//!    and hashed (FNV-1a, 128 bit) into a stable [`CanonKey`].
//!
//! Pathologically symmetric queries (many disjoint identical atoms) can make
//! the individualization tree large; the search carries a leaf budget and
//! marks the result [`CanonicalQuery::exact`]` = false` when it is exceeded.
//! An inexact form is still deterministic for the *given* query but is not
//! guaranteed to agree across all isomorphic variants, so cache layers must
//! treat it as uncacheable. Hash collisions between distinct shapes are
//! handled by the consumer comparing canonical forms (or running
//! [`shape_isomorphic`], the exact backtracking check in the style of
//! [`crate::homomorphism`]) — a collision can cost a cache miss, never a
//! wrong answer.

use crate::atom::Atom;
use crate::ids::{RelId, Var};
use crate::query::Query;
use std::fmt;

/// Default individualization-refinement leaf budget for [`canonicalize`].
///
/// Real query workloads (the paper's catalogue, anything a user would type)
/// discretize after one or two individualizations; the budget only bites on
/// adversarially symmetric inputs such as dozens of disjoint copies of the
/// same atom.
pub const DEFAULT_CANON_BUDGET: usize = 512;

/// A stable 128-bit fingerprint of a query's canonical form.
///
/// The key is a deterministic FNV-1a hash of the canonical serialization
/// (relation names, exogenous flags, canonical variable numbers): equal for
/// every member of a shape class, stable across processes and platforms, and
/// wide enough that accidental collisions are negligible — but consumers must
/// still confirm a key match by comparing canonical forms, since distinct
/// shapes colliding is possible in principle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonKey(pub u128);

impl CanonKey {
    /// The key as a raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// The high 64 bits (for consumers that only store a 64-bit key).
    pub fn hi(self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// The low 64 bits.
    pub fn lo(self) -> u64 {
        self.0 as u64
    }
}

impl fmt::Debug for CanonKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CanonKey({:032x})", self.0)
    }
}

impl fmt::Display for CanonKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The canonical representative of a query's shape class.
#[derive(Clone, Debug)]
pub struct CanonicalQuery {
    /// The canonical form: variables renamed `x0, x1, …`, atoms sorted,
    /// query name dropped (names are not part of the shape).
    pub query: Query,
    /// Stable fingerprint of [`CanonicalQuery::query`].
    pub key: CanonKey,
    /// `var_map[v]` is the canonical variable the original variable `v` maps
    /// to (indexed by [`Var::index`]).
    pub var_map: Vec<Var>,
    /// `atom_map[i]` is the original index of the canonical atom `i`.
    pub atom_map: Vec<usize>,
    /// `true` when the individualization search completed within budget. An
    /// inexact form is deterministic for this query but not guaranteed to
    /// agree across isomorphic variants; cache layers must bypass it.
    pub exact: bool,
}

/// Canonicalizes `q` with the [`DEFAULT_CANON_BUDGET`].
pub fn canonicalize(q: &Query) -> CanonicalQuery {
    canonicalize_with_budget(q, DEFAULT_CANON_BUDGET)
}

/// One fully ranked atom: `(relation name rank, exogenous, ranked args)`.
/// Candidates compare lexicographically over sorted lists of these.
type RankedAtom = (u32, bool, Vec<u32>);

/// A leaf candidate: the sorted ranked atom list plus the var order and atom
/// permutation that produced it (needed to recover the mappings).
struct Candidate {
    atoms: Vec<RankedAtom>,
    /// `rank -> original variable`.
    order: Vec<Var>,
    /// `sorted position -> original atom index`.
    atom_map: Vec<usize>,
}

struct IrSearch<'a> {
    q: &'a Query,
    /// Rank of each relation id under the name ordering (isomorphism
    /// invariant: variants of one shape share the relation name set).
    name_rank: Vec<u32>,
    best: Option<Candidate>,
    leaves_left: usize,
    exact: bool,
}

/// Canonicalizes `q`, exploring at most `budget` individualization leaves.
///
/// `budget` is clamped to at least 1, so the search always completes one
/// leaf and the result is always a well-formed (if possibly inexact)
/// representative.
pub fn canonicalize_with_budget(q: &Query, budget: usize) -> CanonicalQuery {
    let mut name_order: Vec<RelId> = q.schema().relation_ids().collect();
    name_order.sort_by_key(|&r| q.schema().name(r));
    let mut name_rank = vec![0u32; q.schema().len()];
    for (rank, &r) in name_order.iter().enumerate() {
        name_rank[r.index()] = rank as u32;
    }

    let mut search = IrSearch {
        q,
        name_rank,
        best: None,
        leaves_left: budget.max(1),
        exact: true,
    };
    let mut colors = initial_colors(q, &search.name_rank);
    search.run(&mut colors);
    let cand = search.best.expect("budget >= 1 guarantees one leaf");
    build_canonical(q, cand, search.exact)
}

/// Seeds variable colors from occurrence profiles: the sorted multiset of
/// `(relation name rank, exogenous, position)` over all occurrences.
fn initial_colors(q: &Query, name_rank: &[u32]) -> Vec<u64> {
    let mut profiles: Vec<Vec<(u32, bool, u32)>> = vec![Vec::new(); q.num_vars()];
    for a in q.atoms() {
        for (pos, &v) in a.args.iter().enumerate() {
            profiles[v.index()].push((name_rank[a.relation.index()], a.exogenous, pos as u32));
        }
    }
    profiles
        .into_iter()
        .map(|mut p| {
            p.sort_unstable();
            let mut h = Fnv64::new();
            for (r, x, pos) in p {
                h.write_u32(r);
                h.write_u8(x as u8);
                h.write_u32(pos);
            }
            h.finish()
        })
        .collect()
}

impl IrSearch<'_> {
    /// Refines `colors` to a fixpoint: atom signatures from argument colors,
    /// then variable colors from `(old color, occurrence signatures)`.
    /// Including the old color makes refinement monotone (classes only
    /// split), so the distinct-color count is non-decreasing and the loop
    /// terminates within `num_vars` rounds.
    fn refine(&self, colors: &mut [u64]) {
        let q = self.q;
        let mut distinct = distinct_count(colors);
        loop {
            let atom_sigs: Vec<u64> = q
                .atoms()
                .iter()
                .map(|a| {
                    let mut h = Fnv64::new();
                    h.write_u32(self.name_rank[a.relation.index()]);
                    h.write_u8(a.exogenous as u8);
                    for &v in &a.args {
                        h.write_u64(colors[v.index()]);
                    }
                    h.finish()
                })
                .collect();
            let mut occ: Vec<Vec<(u64, u32)>> = vec![Vec::new(); q.num_vars()];
            for (i, a) in q.atoms().iter().enumerate() {
                for (pos, &v) in a.args.iter().enumerate() {
                    occ[v.index()].push((atom_sigs[i], pos as u32));
                }
            }
            for (v, o) in occ.into_iter().enumerate() {
                let mut sorted = o;
                sorted.sort_unstable();
                let mut h = Fnv64::new();
                h.write_u64(colors[v]);
                for (sig, pos) in sorted {
                    h.write_u64(sig);
                    h.write_u32(pos);
                }
                colors[v] = h.finish();
            }
            let now = distinct_count(colors);
            if now == distinct || now == q.num_vars() {
                return;
            }
            distinct = now;
        }
    }

    fn run(&mut self, colors: &mut [u64]) {
        if self.leaves_left == 0 {
            self.exact = false;
            return;
        }
        self.refine(colors);
        match target_class(colors) {
            None => {
                // Discrete partition: colors are pairwise distinct, so
                // sorting by color is a total variable order.
                self.leaves_left -= 1;
                let mut order: Vec<Var> = self.q.vars().collect();
                order.sort_unstable_by_key(|v| colors[v.index()]);
                self.consider_leaf(order);
            }
            Some(class) => {
                for v in class {
                    let mut child = colors.to_vec();
                    // Individualize: a fresh color derived only from the old
                    // one, so corresponding branches of isomorphic queries
                    // stay aligned.
                    let mut h = Fnv64::new();
                    h.write_u64(child[v.index()]);
                    h.write_u64(0x49445f53504c4954); // "ID_SPLIT"
                    child[v.index()] = h.finish();
                    self.run(&mut child);
                    if self.leaves_left == 0 {
                        self.exact = false;
                        return;
                    }
                }
            }
        }
    }

    /// Builds the candidate for one total variable order and keeps the
    /// lexicographic minimum.
    fn consider_leaf(&mut self, order: Vec<Var>) {
        let q = self.q;
        let mut rank = vec![0u32; q.num_vars()];
        for (r, &v) in order.iter().enumerate() {
            rank[v.index()] = r as u32;
        }
        let mut atoms: Vec<(RankedAtom, usize)> = q
            .atoms()
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let args: Vec<u32> = a.args.iter().map(|v| rank[v.index()]).collect();
                ((self.name_rank[a.relation.index()], a.exogenous, args), i)
            })
            .collect();
        atoms.sort();
        let (atoms, atom_map): (Vec<RankedAtom>, Vec<usize>) = atoms.into_iter().unzip();
        let replace = match &self.best {
            None => true,
            Some(b) => atoms < b.atoms,
        };
        if replace {
            self.best = Some(Candidate {
                atoms,
                order,
                atom_map,
            });
        }
    }
}

/// Groups variables by color and returns the invariantly chosen target class
/// for individualization — the first non-singleton class ordered by
/// `(size, color)` — or `None` when the partition is discrete.
fn target_class(colors: &[u64]) -> Option<Vec<Var>> {
    let mut classes: Vec<(u64, Vec<Var>)> = Vec::new();
    let mut sorted: Vec<(u64, u32)> = colors
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u32))
        .collect();
    sorted.sort_unstable();
    for (c, i) in sorted {
        match classes.last_mut() {
            Some((lc, vs)) if *lc == c => vs.push(Var(i)),
            _ => classes.push((c, vec![Var(i)])),
        }
    }
    classes
        .into_iter()
        .filter(|(_, vs)| vs.len() > 1)
        .min_by_key(|(c, vs)| (vs.len(), *c))
        .map(|(_, vs)| vs)
}

fn distinct_count(colors: &[u64]) -> usize {
    let mut sorted: Vec<u64> = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Rebuilds the winning candidate as a canonical [`Query`] and fingerprint.
fn build_canonical(q: &Query, cand: Candidate, exact: bool) -> CanonicalQuery {
    // Compact variable ranks to `x0, x1, …` by first occurrence in the
    // sorted atom list (every variable of a `Query` occurs in some atom).
    let mut compact: Vec<Option<u32>> = vec![None; q.num_vars()];
    let mut next = 0u32;
    for (_, _, args) in &cand.atoms {
        for &r in args {
            if compact[r as usize].is_none() {
                compact[r as usize] = Some(next);
                next += 1;
            }
        }
    }
    debug_assert_eq!(next as usize, q.num_vars(), "every variable must occur");

    let mut b = Query::builder();
    for ((_, exo, args), &orig_idx) in cand.atoms.iter().zip(&cand.atom_map) {
        let rel_name = q.schema().name(q.atom(orig_idx).relation).to_string();
        let names: Vec<String> = args
            .iter()
            .map(|&r| format!("x{}", compact[r as usize].expect("occurs")))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b = if *exo {
            b.exogenous_atom(&rel_name, &refs)
        } else {
            b.atom(&rel_name, &refs)
        };
    }
    let query = b.build();
    debug_assert_eq!(query.num_vars(), q.num_vars());

    let var_map: Vec<Var> = (0..q.num_vars())
        .map(|v| {
            let r = cand
                .order
                .iter()
                .position(|&ov| ov.index() == v)
                .expect("order is a permutation") as u32;
            Var(compact[r as usize].expect("occurs"))
        })
        .collect();

    let key = fingerprint(&query);
    CanonicalQuery {
        query,
        key,
        var_map,
        atom_map: cand.atom_map,
        exact,
    }
}

/// FNV-1a (128-bit) over the canonical serialization: atom count, variable
/// count, then per atom the relation name bytes, a separator, the exogenous
/// flag and the canonical argument numbers.
fn fingerprint(canonical: &Query) -> CanonKey {
    let mut h = Fnv128::new();
    h.write_u32(canonical.num_atoms() as u32);
    h.write_u32(canonical.num_vars() as u32);
    for a in canonical.atoms() {
        for byte in canonical.schema().name(a.relation).bytes() {
            h.write_u8(byte);
        }
        h.write_u8(0);
        h.write_u8(a.exogenous as u8);
        h.write_u8(a.args.len() as u8);
        for &v in &a.args {
            h.write_u32(v.0);
        }
        h.write_u8(1);
    }
    CanonKey(h.finish())
}

/// Exact shape-isomorphism check: is there a variable bijection turning `a`
/// into `b`, atom for atom, with relation *names* and exogenous flags fixed?
///
/// This is the backtracking of [`crate::homomorphism::find_homomorphism`]
/// specialized to bijections over matching relation names — unlike
/// [`crate::classify::structurally_isomorphic`], relation symbols may *not*
/// be renamed (queries over `R` and over `S` are different shapes, because a
/// database instance names its relations). It is the collision fallback for
/// canonical-key consumers and the ground truth the canonicalization tests
/// compare against.
pub fn shape_isomorphic(a: &Query, b: &Query) -> bool {
    if a.num_atoms() != b.num_atoms() || a.num_vars() != b.num_vars() {
        return false;
    }
    let candidates: Vec<Vec<usize>> = a
        .atoms()
        .iter()
        .map(|aa| {
            let name = a.schema().name(aa.relation);
            b.atoms()
                .iter()
                .enumerate()
                .filter(|(_, ba)| {
                    b.schema().name(ba.relation) == name
                        && ba.exogenous == aa.exogenous
                        && ba.args.len() == aa.args.len()
                })
                .map(|(j, _)| j)
                .collect()
        })
        .collect();
    // Assign scarce atoms first.
    let mut order: Vec<usize> = (0..a.num_atoms()).collect();
    order.sort_by_key(|&i| candidates[i].len());
    let mut fwd: Vec<Option<Var>> = vec![None; a.num_vars()];
    let mut bwd: Vec<Option<Var>> = vec![None; b.num_vars()];
    let mut used = vec![false; b.num_atoms()];
    assign_atoms(a, b, &candidates, &order, 0, &mut fwd, &mut bwd, &mut used)
}

#[allow(clippy::too_many_arguments)]
fn assign_atoms(
    a: &Query,
    b: &Query,
    candidates: &[Vec<usize>],
    order: &[usize],
    depth: usize,
    fwd: &mut [Option<Var>],
    bwd: &mut [Option<Var>],
    used: &mut [bool],
) -> bool {
    if depth == order.len() {
        return true;
    }
    let i = order[depth];
    let src = a.atom(i);
    for &j in &candidates[i] {
        if used[j] {
            continue;
        }
        let tgt = b.atom(j);
        let mut added: Vec<Var> = Vec::new();
        let mut ok = true;
        for (&s, &t) in src.args.iter().zip(tgt.args.iter()) {
            match (fwd[s.index()], bwd[t.index()]) {
                (Some(ft), Some(bs)) if ft == t && bs == s => {}
                (None, None) => {
                    fwd[s.index()] = Some(t);
                    bwd[t.index()] = Some(s);
                    added.push(s);
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            used[j] = true;
            if assign_atoms(a, b, candidates, order, depth + 1, fwd, bwd, used) {
                return true;
            }
            used[j] = false;
        }
        for s in added {
            let t = fwd[s.index()].take().expect("was set");
            bwd[t.index()] = None;
        }
    }
    false
}

/// Applies the canonicalization mapping to an arbitrary atom of the original
/// query — the "cheap variable remapping step" cache consumers perform when
/// translating per-variant artifacts into canonical space.
pub fn remap_atom(canon: &CanonicalQuery, atom: &Atom) -> Atom {
    Atom {
        relation: atom.relation,
        args: atom
            .args
            .iter()
            .map(|&v| canon.var_map[v.index()])
            .collect(),
        exogenous: atom.exogenous,
    }
}

// ---------------------------------------------------------------------------
// Deterministic hashing. `std::collections::hash_map::DefaultHasher` is
// randomized per process, so the fingerprints are hand-rolled FNV-1a — the
// crate stays dependency-free and keys stay stable across runs and machines.
// ---------------------------------------------------------------------------

struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
    }

    fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u128).wrapping_mul(Self::PRIME);
    }

    fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn finish(&self) -> u128 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalogue::all_named_queries;
    use crate::parse_query;

    #[test]
    fn chain_variants_share_key_and_form() {
        let a = parse_query("R(x,y), R(y,z)").unwrap();
        let b = parse_query("R(v,w), R(u,v)").unwrap(); // renamed + permuted
        let ca = canonicalize(&a);
        let cb = canonicalize(&b);
        assert!(ca.exact && cb.exact);
        assert_eq!(ca.key, cb.key);
        assert_eq!(ca.query, cb.query);
    }

    #[test]
    fn query_name_is_not_part_of_the_shape() {
        let a = parse_query("R(x,y), R(y,z)").unwrap().with_name("alpha");
        let b = parse_query("R(x,y), R(y,z)").unwrap().with_name("beta");
        assert_eq!(canonicalize(&a).key, canonicalize(&b).key);
        assert_eq!(canonicalize(&a).query.name(), None);
    }

    #[test]
    fn relation_names_are_part_of_the_shape() {
        let a = parse_query("R(x,y), R(y,z)").unwrap();
        let b = parse_query("S(x,y), S(y,z)").unwrap();
        assert_ne!(canonicalize(&a).key, canonicalize(&b).key);
        assert!(!shape_isomorphic(&a, &b));
        // ... even though the classifier's structural isomorphism (which may
        // rename relations) identifies them.
        assert!(crate::classify::structurally_isomorphic(&a, &b));
    }

    #[test]
    fn exogenous_flags_are_part_of_the_shape() {
        let a = parse_query("A(x), R(x,y)").unwrap();
        let b = a.with_exogenous(&[0]);
        assert_ne!(canonicalize(&a).key, canonicalize(&b).key);
        assert!(!shape_isomorphic(&a, &b));
    }

    #[test]
    fn repeated_variables_distinguish_shapes() {
        let a = parse_query("R(x,x)").unwrap();
        let b = parse_query("R(x,y)").unwrap();
        assert_ne!(canonicalize(&a).key, canonicalize(&b).key);
        assert!(!shape_isomorphic(&a, &b));
    }

    #[test]
    fn canonicalization_is_idempotent() {
        for nq in all_named_queries() {
            let c1 = canonicalize(&nq.query);
            let c2 = canonicalize(&c1.query);
            assert_eq!(c1.query, c2.query, "{} not idempotent", nq.name);
            assert_eq!(c1.key, c2.key);
        }
    }

    #[test]
    fn var_and_atom_maps_describe_the_isomorphism() {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let c = canonicalize(&q);
        // Remapping every original atom must land exactly on the canonical
        // atom set (as name/exo/args triples).
        let mut remapped: Vec<(String, bool, Vec<Var>)> = q
            .atoms()
            .iter()
            .map(|a| {
                let m = remap_atom(&c, a);
                (q.schema().name(a.relation).to_string(), m.exogenous, m.args)
            })
            .collect();
        remapped.sort();
        let mut canon_atoms: Vec<(String, bool, Vec<Var>)> = c
            .query
            .atoms()
            .iter()
            .map(|a| {
                (
                    c.query.schema().name(a.relation).to_string(),
                    a.exogenous,
                    a.args.clone(),
                )
            })
            .collect();
        canon_atoms.sort();
        assert_eq!(remapped, canon_atoms);
        // atom_map is a permutation of the original indices.
        let mut am = c.atom_map.clone();
        am.sort_unstable();
        assert_eq!(am, (0..q.num_atoms()).collect::<Vec<_>>());
    }

    #[test]
    fn catalogue_queries_have_pairwise_distinct_forms() {
        let canon: Vec<(String, CanonicalQuery)> = all_named_queries()
            .into_iter()
            .map(|nq| (nq.name.to_string(), canonicalize(&nq.query)))
            .collect();
        for (i, (name_a, a)) in canon.iter().enumerate() {
            assert!(a.exact, "{name_a} exceeded the default budget");
            for (name_b, b) in canon.iter().skip(i + 1) {
                assert_ne!(
                    a.query, b.query,
                    "{name_a} and {name_b} share a canonical form"
                );
                assert_ne!(a.key, b.key, "{name_a} and {name_b} share a key");
            }
        }
    }

    #[test]
    fn shape_isomorphic_agrees_with_canonical_equality_on_catalogue() {
        let queries: Vec<_> = all_named_queries();
        for (i, a) in queries.iter().enumerate() {
            for b in queries.iter().skip(i) {
                let same_form = canonicalize(&a.query).query == canonicalize(&b.query).query;
                assert_eq!(
                    same_form,
                    shape_isomorphic(&a.query, &b.query),
                    "{} vs {}",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn symmetric_query_canonicalizes_within_budget() {
        // A 6-cycle has 12 automorphisms and needs individualization.
        let a = parse_query("R(a,b), R(b,c), R(c,d), R(d,e), R(e,f), R(f,a)").unwrap();
        let b = parse_query("R(q,p), R(r,q), R(s,r), R(t,s), R(u,t), R(p,u)").unwrap();
        let ca = canonicalize(&a);
        let cb = canonicalize(&b);
        assert!(ca.exact && cb.exact);
        assert_eq!(ca.query, cb.query);
        assert_eq!(ca.key, cb.key);
    }

    #[test]
    fn budget_exhaustion_is_flagged_not_wrong() {
        // Many disjoint copies of the same atom: the color partition cannot
        // separate them, so the IR tree is factorial. A tiny budget must
        // bail out with `exact = false` and still return a usable form.
        let text: Vec<String> = (0..8).map(|i| format!("R(a{i},b{i})")).collect();
        let q = parse_query(&text.join(", ")).unwrap();
        let c = canonicalize_with_budget(&q, 2);
        assert!(!c.exact);
        assert_eq!(c.query.num_atoms(), 8);
        assert!(c.query.validate().is_ok());
        // With enough budget the same query is exact.
        assert!(canonicalize_with_budget(&q, 100_000).exact);
    }

    #[test]
    fn keys_are_stable_across_calls() {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let k1 = canonicalize(&q).key;
        let k2 = canonicalize(&q).key;
        assert_eq!(k1, k2);
        assert_ne!(k1.as_u128(), 0);
        assert_eq!(k1.as_u128(), ((k1.hi() as u128) << 64) | k1.lo() as u128);
    }
}
