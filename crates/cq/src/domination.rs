//! Domination: when endogenous atoms/relations are *implicitly* exogenous.
//!
//! The paper uses two notions:
//!
//! * **Self-join-free domination** (Definition 3): atom `A` dominates atom `B`
//!   when `var(A) ⊂ var(B)` (strict inclusion) and both are endogenous.
//!   Dominated atoms can be made exogenous without changing resilience
//!   (Proposition 4).
//! * **Self-join domination** (Definition 16): relation `A` dominates relation
//!   `B` when there is a positional function `f : [arity(A)] → [arity(B)]`
//!   such that *every* `B`-atom `g_B` has some `A`-atom `h_A` with
//!   `pos_{h_A}(i) = pos_{g_B}(f(i))` for all `i`. Dominated relations can be
//!   made exogenous without changing resilience (Proposition 18).
//!
//! Example 11 of the paper shows why the sj-free notion is unsound in the
//! presence of self-joins; the tests below reproduce Example 17 which
//! contrasts the two.

use crate::ids::{RelId, Var};
use crate::query::Query;
use std::collections::BTreeSet;

/// Atom-level domination test (Definition 3): does atom `a` dominate atom `b`?
///
/// Requires both atoms to be endogenous and `var(a) ⊂ var(b)` strictly.
pub fn atom_dominates(q: &Query, a: usize, b: usize) -> bool {
    if a == b {
        return false;
    }
    let atom_a = q.atom(a);
    let atom_b = q.atom(b);
    if atom_a.exogenous || atom_b.exogenous {
        return false;
    }
    let va: BTreeSet<Var> = atom_a.var_set().into_iter().collect();
    let vb: BTreeSet<Var> = atom_b.var_set().into_iter().collect();
    va.is_subset(&vb) && va != vb
}

/// Indices of atoms that are dominated by some other endogenous atom under
/// the self-join-free notion (Definition 3).
pub fn dominated_atoms_sjfree(q: &Query) -> Vec<usize> {
    let mut out = Vec::new();
    for b in 0..q.num_atoms() {
        if q.atom(b).exogenous {
            continue;
        }
        if (0..q.num_atoms()).any(|a| atom_dominates(q, a, b)) {
            out.push(b);
        }
    }
    out
}

/// Relation-level domination test (Definition 16): does relation `dominator`
/// dominate relation `dominated` in `q`?
///
/// Both relations must have at least one endogenous atom in `q`; exogenous
/// atoms are ignored when enumerating the `A`-atoms a `B`-atom may be matched
/// against (a tuple from an exogenous atom could never be substituted into a
/// contingency set).
pub fn relation_dominates(q: &Query, dominator: RelId, dominated: RelId) -> bool {
    if dominator == dominated {
        return false;
    }
    let a_atoms: Vec<usize> = q
        .atoms_of(dominator)
        .into_iter()
        .filter(|&i| !q.atom(i).exogenous)
        .collect();
    let b_atoms: Vec<usize> = q
        .atoms_of(dominated)
        .into_iter()
        .filter(|&i| !q.atom(i).exogenous)
        .collect();
    if a_atoms.is_empty() || b_atoms.is_empty() {
        return false;
    }
    let arity_a = q.schema().arity(dominator);
    let arity_b = q.schema().arity(dominated);

    // Enumerate all functions f : [arity_a] -> [arity_b]. Arities in this
    // paper are at most 3, so the enumeration is tiny (arity_b^arity_a).
    let mut f = vec![0usize; arity_a];
    loop {
        if function_witnesses_domination(q, &a_atoms, &b_atoms, &f) {
            return true;
        }
        // Advance f like a little odometer in base arity_b.
        let mut pos = 0;
        loop {
            if pos == arity_a {
                return false;
            }
            f[pos] += 1;
            if f[pos] < arity_b {
                break;
            }
            f[pos] = 0;
            pos += 1;
        }
    }
}

fn function_witnesses_domination(
    q: &Query,
    a_atoms: &[usize],
    b_atoms: &[usize],
    f: &[usize],
) -> bool {
    // Every B-atom must have some A-atom matching through f.
    b_atoms.iter().all(|&gb| {
        let b_args = &q.atom(gb).args;
        a_atoms.iter().any(|&ha| {
            let a_args = &q.atom(ha).args;
            a_args.iter().enumerate().all(|(i, &av)| av == b_args[f[i]])
        })
    })
}

/// All relations that are dominated by some other relation with endogenous
/// atoms, under the self-join notion (Definition 16).
///
/// Mutual domination (two relations dominating each other, e.g.
/// `q :- A(x), B(x)`) is broken deterministically: relations are scanned in
/// schema order and a relation is only reported as dominated if one of its
/// dominators has not itself already been marked dominated. This keeps at
/// least one of a mutually-dominating group endogenous, which is required for
/// Proposition 18 to apply ("labeling *some* dominated relations exogenous").
pub fn dominated_relations(q: &Query) -> Vec<RelId> {
    let endogenous_rels: Vec<RelId> = q
        .schema()
        .relation_ids()
        .filter(|&r| q.atoms_of(r).iter().any(|&i| !q.atom(i).exogenous))
        .collect();
    let mut dominated: Vec<RelId> = Vec::new();
    for &b in &endogenous_rels {
        let has_live_dominator = endogenous_rels
            .iter()
            .filter(|&&a| a != b && !dominated.contains(&a))
            .any(|&a| relation_dominates(q, a, b));
        if has_live_dominator {
            dominated.push(b);
        }
    }
    dominated
}

/// Returns the *normal form* of `q`: all dominated relations are marked
/// exogenous (Proposition 18). The transformation is idempotent.
pub fn normalize(q: &Query) -> Query {
    let mut current = q.clone();
    loop {
        let dominated = dominated_relations(&current);
        if dominated.is_empty() {
            return current;
        }
        let mut to_mark: Vec<usize> = Vec::new();
        for rel in dominated {
            for idx in current.atoms_of(rel) {
                if !current.atom(idx).exogenous {
                    to_mark.push(idx);
                }
            }
        }
        if to_mark.is_empty() {
            return current;
        }
        current = current.with_exogenous(&to_mark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn tripod_a_dominates_w() {
        // q_T :- A(x), B(y), C(z), W(x,y,z): A dominates W (Definition 3).
        let q = parse_query("A(x), B(y), C(z), W(x,y,z)").unwrap();
        assert!(atom_dominates(&q, 0, 3));
        assert!(!atom_dominates(&q, 3, 0));
        assert_eq!(dominated_atoms_sjfree(&q), vec![3]);
        // Relation-level domination agrees.
        let a = q.schema().relation_id("A").unwrap();
        let w = q.schema().relation_id("W").unwrap();
        assert!(relation_dominates(&q, a, w));
        assert!(!relation_dominates(&q, w, a));
    }

    #[test]
    fn rats_a_dominates_r_and_t() {
        // q_rats :- R(x,y), A(x), T(z,x), S(y,z): A dominates R and T.
        let q = parse_query("R(x,y), A(x), T(z,x), S(y,z)").unwrap();
        let a = q.schema().relation_id("A").unwrap();
        let r = q.schema().relation_id("R").unwrap();
        let t = q.schema().relation_id("T").unwrap();
        let s = q.schema().relation_id("S").unwrap();
        assert!(relation_dominates(&q, a, r));
        assert!(relation_dominates(&q, a, t));
        assert!(!relation_dominates(&q, a, s));
        let dominated = dominated_relations(&q);
        assert!(dominated.contains(&r));
        assert!(dominated.contains(&t));
        assert!(!dominated.contains(&s));
        assert!(!dominated.contains(&a));
        // Normal form marks exactly the R and T atoms exogenous.
        let n = normalize(&q);
        assert!(n.atom(0).exogenous); // R(x,y)
        assert!(!n.atom(1).exogenous); // A(x)
        assert!(n.atom(2).exogenous); // T(z,x)
        assert!(!n.atom(3).exogenous); // S(y,z)
    }

    #[test]
    fn example_17_self_join_domination() {
        // q1 :- R(x,y), A(y), R(y,z), S(y,z): A does NOT dominate R, S is dominated.
        let q1 = parse_query("R(x,y), A(y), R(y,z), S(y,z)").unwrap();
        let a = q1.schema().relation_id("A").unwrap();
        let r = q1.schema().relation_id("R").unwrap();
        let s = q1.schema().relation_id("S").unwrap();
        assert!(!relation_dominates(&q1, a, r));
        assert!(relation_dominates(&q1, a, s));

        // q2 :- R(x,y), A(y), R(z,y), S(y,z): A dominates R and S.
        let q2 = parse_query("R(x,y), A(y), R(z,y), S(y,z)").unwrap();
        let a2 = q2.schema().relation_id("A").unwrap();
        let r2 = q2.schema().relation_id("R").unwrap();
        let s2 = q2.schema().relation_id("S").unwrap();
        assert!(relation_dominates(&q2, a2, r2));
        assert!(relation_dominates(&q2, a2, s2));
    }

    #[test]
    fn example_11_sj1_rats_r_not_dominated() {
        // q_sj1rats :- A(x), R(x,y), R(y,z), R(z,x): the sj-free notion would
        // say A dominates R(x,y); the self-join notion must not.
        let q = parse_query("A(x), R(x,y), R(y,z), R(z,x)").unwrap();
        let a = q.schema().relation_id("A").unwrap();
        let r = q.schema().relation_id("R").unwrap();
        assert!(!relation_dominates(&q, a, r));
        assert!(dominated_relations(&q).is_empty());
        // But the per-atom sj-free notion (naively applied) *would* flag
        // R(x,y), illustrating why it is unsound here.
        assert!(atom_dominates(&q, 0, 1));
    }

    #[test]
    fn mutual_domination_keeps_one_endogenous() {
        let q = parse_query("A(x), B(x)").unwrap();
        let dominated = dominated_relations(&q);
        assert_eq!(dominated.len(), 1);
        let n = normalize(&q);
        let endo = n.endogenous_atoms();
        assert_eq!(endo.len(), 1);
    }

    #[test]
    fn exogenous_dominator_does_not_count() {
        // A is exogenous, so it cannot dominate W.
        let q = parse_query("A^x(x), W(x,y)").unwrap();
        let a = q.schema().relation_id("A").unwrap();
        let w = q.schema().relation_id("W").unwrap();
        assert!(!relation_dominates(&q, a, w));
        assert!(dominated_relations(&q).is_empty());
    }

    #[test]
    fn normalize_is_idempotent() {
        let q = parse_query("R(x,y), A(x), T(z,x), S(y,z)").unwrap();
        let n1 = normalize(&q);
        let n2 = normalize(&n1);
        assert_eq!(n1, n2);
    }

    #[test]
    fn brats_b_dominates_s() {
        // q_brats :- B(y), R(x,y), A(x), T(z,x), S(y,z): A dominates R, T and
        // B dominates S; only A and B stay endogenous.
        let q = parse_query("B(y), R(x,y), A(x), T(z,x), S(y,z)").unwrap();
        let n = normalize(&q);
        let endo_names: Vec<&str> = n
            .endogenous_atoms()
            .into_iter()
            .map(|i| n.schema().name(n.atom(i).relation))
            .collect();
        assert_eq!(endo_names, vec!["B", "A"]);
    }

    #[test]
    fn unary_relation_dominates_binary_with_matching_position() {
        // In q_ACconf :- A(x), R(x,y), R(z,y), C(z): A matches position 1 of
        // R(x,y) but there is no A(z) for R(z,y), so A must not dominate R.
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let a = q.schema().relation_id("A").unwrap();
        let r = q.schema().relation_id("R").unwrap();
        let c = q.schema().relation_id("C").unwrap();
        assert!(!relation_dominates(&q, a, r));
        assert!(!relation_dominates(&q, c, r));
        assert!(dominated_relations(&q).is_empty());
    }

    #[test]
    fn domination_with_repeated_argument_positions() {
        // R(x,x) is dominated by A(x) via either positional function.
        let q = parse_query("A(x), R(x,x), S(x,y)").unwrap();
        let a = q.schema().relation_id("A").unwrap();
        let r = q.schema().relation_id("R").unwrap();
        assert!(relation_dominates(&q, a, r));
    }
}
