//! The dichotomy classifier (Theorem 37) extended with the general hardness
//! criteria of Sections 5–6 and the Section 8 catalogue.
//!
//! `classify` decides, for an input conjunctive query, whether its resilience
//! problem is known to be in PTIME, known to be NP-complete, or open, and
//! reports the structural evidence behind the decision. The pipeline mirrors
//! the paper's plan of attack (Section 4.4):
//!
//! 1. minimize the query (Section 4.1);
//! 2. split into connected components and classify each (Lemmas 14–15);
//! 3. compute the domination normal form (Proposition 18);
//! 4. a triad implies NP-completeness (Theorem 24);
//! 5. self-join-free and triad-free queries are in PTIME (Theorem 7);
//! 6. for ssj binary queries: unary/binary paths (Theorems 27–28), chains
//!    (Propositions 30, 38), confluences (Propositions 31–32), permutations
//!    (Propositions 33–35) and REP queries (Proposition 36);
//! 7. remaining three-R-atom queries are matched against the Section 8
//!    catalogue; anything else is reported as `Open`.

use crate::catalogue::{all_named_queries, PaperClass};
use crate::domination::normalize;
use crate::homomorphism::minimize;
use crate::patterns::{
    analyze_pair, confluence_has_exogenous_path, confluence_variables, find_binary_path,
    has_unary_path, k_chain_length, permutation_is_bound, single_self_join_relation, PairKind,
};
use crate::query::Query;
use crate::triad::{find_triad, Triad};
use std::collections::HashMap;
use std::fmt;

/// The polynomial-time algorithm that solves the query, when one is known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PtimeAlgorithm {
    /// The query has no endogenous atoms: it can never be made false, so the
    /// resilience problem is (trivially) decidable in constant time.
    Unfalsifiable,
    /// Self-join-free and triad-free: the classic network-flow algorithm of
    /// the sj-free dichotomy (Theorem 7).
    SjFreeLinearFlow,
    /// The query is disconnected and every component is in PTIME
    /// (Lemma 15); resilience is the minimum over the components.
    ComponentWise,
    /// A 2-confluence with no exogenous path: standard network flow with
    /// duplicated R-edges (Propositions 12, 31, 32).
    ConfluenceFlow,
    /// An unbound 2-permutation: witness counting / bipartite vertex cover
    /// (Propositions 33, 35).
    UnboundPermutation,
    /// A REP query containing `z3` (shared variable, repeated variable):
    /// network flow ignoring off-diagonal tuples (Proposition 36).
    RepeatedVariableFlow,
    /// The query matched a named PTIME query from the paper's catalogue
    /// (e.g. `q_A3perm-R`, `q_Swx3perm-R`, `q_TS3conf`).
    CatalogueMatch(&'static str),
}

/// The structural reason a query's resilience problem is NP-complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HardnessReason {
    /// The normalized query contains a triad (Theorem 24); the payload gives
    /// the indices of the three atoms in the normalized query.
    Triad([usize; 3]),
    /// Some connected component is NP-complete (Lemma 15); the payload names
    /// the component's reason.
    ComponentHard(Box<HardnessReason>),
    /// A unary path between two atoms of a unary self-join relation
    /// (Theorem 27).
    UnaryPath,
    /// A binary path between two consecutive disjoint atoms of a binary
    /// self-join relation (Theorem 28); payload = the two atom indices.
    BinaryPath(usize, usize),
    /// A k-chain of self-join atoms (Propositions 10, 30, 38).
    Chain(usize),
    /// A bound 2-permutation (Propositions 34, 35).
    BoundPermutation,
    /// A 2-confluence with an exogenous path between its outer variables
    /// (Proposition 32).
    ConfluenceExogenousPath,
    /// The query matched a named NP-complete query from the catalogue.
    CatalogueMatch(&'static str),
}

/// Overall complexity decision for a query's resilience problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Complexity {
    /// RES(q) is solvable in polynomial time by the named algorithm.
    PTime(PtimeAlgorithm),
    /// RES(q) is NP-complete for the named reason.
    NpComplete(HardnessReason),
    /// The complexity is not determined by the paper's results (or falls
    /// outside the classified fragment).
    Open,
}

impl Complexity {
    /// `true` if the decision is `PTime`.
    pub fn is_ptime(&self) -> bool {
        matches!(self, Complexity::PTime(_))
    }

    /// `true` if the decision is `NpComplete`.
    pub fn is_np_complete(&self) -> bool {
        matches!(self, Complexity::NpComplete(_))
    }

    /// `true` if the decision is `Open`.
    pub fn is_open(&self) -> bool {
        matches!(self, Complexity::Open)
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::PTime(alg) => write!(f, "PTIME ({alg:?})"),
            Complexity::NpComplete(r) => write!(f, "NP-complete ({r:?})"),
            Complexity::Open => write!(f, "open"),
        }
    }
}

/// Structural evidence gathered while classifying a query.
#[derive(Clone, Debug)]
pub struct Evidence {
    /// The minimized query actually analysed.
    pub minimized: Query,
    /// The domination normal form of the minimized query.
    pub normalized: Query,
    /// Number of connected components of the minimized query.
    pub num_components: usize,
    /// The triad found in the normalized query, if any.
    pub triad: Option<Triad>,
    /// Free-form notes about decisions taken along the way.
    pub notes: Vec<String>,
}

/// Result of [`classify`].
#[derive(Clone, Debug)]
pub struct Classification {
    /// The complexity decision.
    pub complexity: Complexity,
    /// The structural evidence supporting it.
    pub evidence: Evidence,
}

/// Classifies the resilience complexity of `q`.
pub fn classify(q: &Query) -> Classification {
    let minimized = minimize(q);
    let mut notes = Vec::new();
    if minimized.num_atoms() != q.num_atoms() {
        notes.push(format!(
            "query was not minimal: {} atoms reduced to {}",
            q.num_atoms(),
            minimized.num_atoms()
        ));
    }
    let components = minimized.components();
    if components.len() > 1 {
        return classify_disconnected(&minimized, &components, notes);
    }
    classify_connected(&minimized, notes)
}

fn classify_disconnected(
    minimized: &Query,
    components: &[Vec<usize>],
    mut notes: Vec<String>,
) -> Classification {
    notes.push(format!(
        "query is disconnected with {} components; complexity is governed by \
         the hardest component (Lemma 15)",
        components.len()
    ));
    let mut any_open = false;
    let mut hard: Option<HardnessReason> = None;
    for comp in components {
        let sub = minimized.subquery(comp);
        let c = classify(&sub);
        match c.complexity {
            Complexity::NpComplete(r) => {
                hard = Some(r);
                break;
            }
            Complexity::Open => any_open = true,
            Complexity::PTime(_) => {}
        }
    }
    let normalized = normalize(minimized);
    let evidence = Evidence {
        minimized: minimized.clone(),
        normalized,
        num_components: components.len(),
        triad: None,
        notes,
    };
    let complexity = match (hard, any_open) {
        (Some(r), _) => Complexity::NpComplete(HardnessReason::ComponentHard(Box::new(r))),
        (None, true) => Complexity::Open,
        (None, false) => Complexity::PTime(PtimeAlgorithm::ComponentWise),
    };
    Classification {
        complexity,
        evidence,
    }
}

fn classify_connected(minimized: &Query, mut notes: Vec<String>) -> Classification {
    let normalized = normalize(minimized);
    let triad = find_triad(&normalized);
    let make = |complexity: Complexity, notes: Vec<String>, triad: Option<Triad>| Classification {
        complexity,
        evidence: Evidence {
            minimized: minimized.clone(),
            normalized: normalized.clone(),
            num_components: 1,
            triad,
            notes,
        },
    };

    // No endogenous atoms: the query cannot be falsified by deletions.
    if normalized.endogenous_atoms().is_empty() {
        notes.push("all atoms are exogenous; the query cannot be made false".to_string());
        return make(
            Complexity::PTime(PtimeAlgorithm::Unfalsifiable),
            notes,
            triad,
        );
    }

    // Triads imply hardness for arbitrary CQs (Theorem 24).
    if let Some(t) = triad.clone() {
        notes.push(format!(
            "triad on normalized atoms {:?} (Theorem 24)",
            t.atoms
        ));
        return make(
            Complexity::NpComplete(HardnessReason::Triad(t.atoms)),
            notes,
            triad,
        );
    }

    // Self-join-free and triad-free: PTIME by the sj-free dichotomy.
    if minimized.is_self_join_free() {
        notes.push("self-join-free and triad-free (Theorem 7)".to_string());
        return make(
            Complexity::PTime(PtimeAlgorithm::SjFreeLinearFlow),
            notes,
            triad,
        );
    }

    // Outside the paper's classified fragment: only the triad criterion
    // applies, which already failed.
    if !minimized.is_binary() || !minimized.is_single_self_join() {
        notes.push(
            "query is not a single-self-join binary query; beyond the paper's dichotomy"
                .to_string(),
        );
        return make(Complexity::Open, notes, triad);
    }

    // Unary and binary paths (Theorems 27, 28).
    if has_unary_path(&normalized) {
        notes.push("unary path between self-join atoms (Theorem 27)".to_string());
        return make(
            Complexity::NpComplete(HardnessReason::UnaryPath),
            notes,
            triad,
        );
    }
    if let Some((i, j)) = find_binary_path(&normalized) {
        notes.push(format!(
            "binary path between self-join atoms {i} and {j} (Theorem 28)"
        ));
        return make(
            Complexity::NpComplete(HardnessReason::BinaryPath(i, j)),
            notes,
            triad,
        );
    }

    let Some((rel, r_atoms)) = single_self_join_relation(&normalized) else {
        // The self-join disappeared during minimization; should have been
        // caught by the sj-free branch, but stay defensive.
        notes.push("no repeated relation after preprocessing".to_string());
        return make(
            Complexity::PTime(PtimeAlgorithm::SjFreeLinearFlow),
            notes,
            triad,
        );
    };

    // If every atom of the repeated relation is exogenous, its tuples can
    // never enter a contingency set; the endogenous part is self-join-free
    // and triad-free, so the standard flow applies (exogenous duplicates get
    // infinite capacity and never constrain the cut).
    if r_atoms.iter().all(|&i| normalized.atom(i).exogenous) {
        notes.push(format!(
            "all atoms of the repeated relation {} are exogenous",
            normalized.schema().name(rel)
        ));
        return make(
            Complexity::PTime(PtimeAlgorithm::SjFreeLinearFlow),
            notes,
            triad,
        );
    }
    if r_atoms.iter().any(|&i| normalized.atom(i).exogenous) {
        // A mix of endogenous and exogenous atoms of the repeated relation is
        // not covered by the paper's case analysis.
        notes.push(format!(
            "the repeated relation {} has both endogenous and exogenous atoms; \
             outside the paper's classified fragment",
            normalized.schema().name(rel)
        ));
        return make(Complexity::Open, notes, triad);
    }

    // k-chains are hard for every k >= 2 (Propositions 10, 30, 38).
    if let Some(k) = k_chain_length(&normalized) {
        notes.push(format!(
            "the self-join atoms form a {k}-chain (Proposition 38)"
        ));
        return make(
            Complexity::NpComplete(HardnessReason::Chain(k)),
            notes,
            triad,
        );
    }

    if r_atoms.len() == 2 {
        let pair = analyze_pair(&normalized, r_atoms[0], r_atoms[1]);
        match pair.kind {
            PairKind::Chain => {
                notes.push("2-chain (Proposition 30)".to_string());
                return make(
                    Complexity::NpComplete(HardnessReason::Chain(2)),
                    notes,
                    triad,
                );
            }
            PairKind::Confluence => {
                let (x, z, y) =
                    confluence_variables(&normalized, r_atoms[0], r_atoms[1]).expect("confluence");
                if confluence_has_exogenous_path(&normalized, x, z, y) {
                    notes.push(
                        "2-confluence with an exogenous path between the outer variables \
                         (Proposition 32)"
                            .to_string(),
                    );
                    return make(
                        Complexity::NpComplete(HardnessReason::ConfluenceExogenousPath),
                        notes,
                        triad,
                    );
                }
                notes.push("2-confluence without exogenous path (Propositions 31, 32)".to_string());
                return make(
                    Complexity::PTime(PtimeAlgorithm::ConfluenceFlow),
                    notes,
                    triad,
                );
            }
            PairKind::Permutation => {
                if permutation_is_bound(&normalized, r_atoms[0], r_atoms[1]) {
                    notes.push("bound 2-permutation (Proposition 35)".to_string());
                    return make(
                        Complexity::NpComplete(HardnessReason::BoundPermutation),
                        notes,
                        triad,
                    );
                }
                notes.push("unbound 2-permutation (Proposition 35)".to_string());
                return make(
                    Complexity::PTime(PtimeAlgorithm::UnboundPermutation),
                    notes,
                    triad,
                );
            }
            PairKind::Rep => {
                notes.push(
                    "REP pattern with a shared variable, contains z3 (Proposition 36)".to_string(),
                );
                return make(
                    Complexity::PTime(PtimeAlgorithm::RepeatedVariableFlow),
                    notes,
                    triad,
                );
            }
            PairKind::Path => {
                // Unreachable: paths are detected above.
                notes.push("path pair (Theorem 28)".to_string());
                return make(
                    Complexity::NpComplete(HardnessReason::BinaryPath(r_atoms[0], r_atoms[1])),
                    notes,
                    triad,
                );
            }
            PairKind::Duplicate => {
                notes.push("duplicate self-join atoms survived minimization".to_string());
                return make(Complexity::Open, notes, triad);
            }
        }
    }

    // Three or more R-atoms: fall back to the Section 8 catalogue.
    if let Some((name, class)) = catalogue_lookup(&normalized) {
        notes.push(format!("matched catalogue query {name} (Section 8)"));
        let complexity = match class {
            PaperClass::PTime => Complexity::PTime(PtimeAlgorithm::CatalogueMatch(name)),
            PaperClass::NpComplete => Complexity::NpComplete(HardnessReason::CatalogueMatch(name)),
            PaperClass::Open => Complexity::Open,
        };
        return make(complexity, notes, triad);
    }

    notes.push(format!(
        "{} atoms of the repeated relation; no general criterion or catalogue entry applies",
        r_atoms.len()
    ));
    make(Complexity::Open, notes, triad)
}

fn catalogue_lookup(normalized: &Query) -> Option<(&'static str, PaperClass)> {
    for entry in all_named_queries() {
        let entry_normalized = normalize(&entry.query);
        if structurally_isomorphic(normalized, &entry_normalized) {
            return Some((entry.name, entry.paper_class));
        }
    }
    None
}

/// Structural isomorphism between two queries: a bijection between atoms, a
/// bijection between relation symbols and a bijection between variables that
/// preserve argument lists and the endogenous/exogenous flag.
///
/// This is a much stronger notion than equivalence and is what the catalogue
/// lookup needs: the catalogue records complexity per *syntactic shape*
/// (including which atoms are exogenous), not per equivalence class.
pub fn structurally_isomorphic(q1: &Query, q2: &Query) -> bool {
    if q1.num_atoms() != q2.num_atoms() || q1.num_vars() != q2.num_vars() {
        return false;
    }
    let mut used = vec![false; q2.num_atoms()];
    let mut rel_map: HashMap<u32, u32> = HashMap::new();
    let mut rel_inv: HashMap<u32, u32> = HashMap::new();
    let mut var_map: HashMap<u32, u32> = HashMap::new();
    let mut var_inv: HashMap<u32, u32> = HashMap::new();
    iso_assign(
        q1,
        q2,
        0,
        &mut used,
        &mut rel_map,
        &mut rel_inv,
        &mut var_map,
        &mut var_inv,
    )
}

#[allow(clippy::too_many_arguments)]
fn iso_assign(
    q1: &Query,
    q2: &Query,
    idx: usize,
    used: &mut Vec<bool>,
    rel_map: &mut HashMap<u32, u32>,
    rel_inv: &mut HashMap<u32, u32>,
    var_map: &mut HashMap<u32, u32>,
    var_inv: &mut HashMap<u32, u32>,
) -> bool {
    if idx == q1.num_atoms() {
        return true;
    }
    let a = q1.atom(idx);
    for j in 0..q2.num_atoms() {
        if used[j] {
            continue;
        }
        let b = q2.atom(j);
        if a.exogenous != b.exogenous || a.args.len() != b.args.len() {
            continue;
        }
        // Try to extend the relation bijection.
        let (ra, rb) = (a.relation.0, b.relation.0);
        let rel_ok = match (rel_map.get(&ra), rel_inv.get(&rb)) {
            (Some(&m), Some(&i)) => m == rb && i == ra,
            (None, None) => true,
            _ => false,
        };
        if !rel_ok {
            continue;
        }
        // Try to extend the variable bijection.
        let mut added_vars: Vec<(u32, u32)> = Vec::new();
        let mut var_ok = true;
        for (&va, &vb) in a.args.iter().zip(b.args.iter()) {
            match (var_map.get(&va.0), var_inv.get(&vb.0)) {
                (Some(&m), Some(&i)) if m == vb.0 && i == va.0 => {}
                (None, None) => {
                    var_map.insert(va.0, vb.0);
                    var_inv.insert(vb.0, va.0);
                    added_vars.push((va.0, vb.0));
                }
                _ => {
                    var_ok = false;
                    break;
                }
            }
        }
        let rel_added = if var_ok && !rel_map.contains_key(&ra) {
            rel_map.insert(ra, rb);
            rel_inv.insert(rb, ra);
            true
        } else {
            false
        };
        if var_ok {
            used[j] = true;
            if iso_assign(q1, q2, idx + 1, used, rel_map, rel_inv, var_map, var_inv) {
                return true;
            }
            used[j] = false;
        }
        if rel_added {
            rel_map.remove(&ra);
            rel_inv.remove(&rb);
        }
        for (va, vb) in added_vars {
            var_map.remove(&va);
            var_inv.remove(&vb);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalogue;
    use crate::parse_query;

    fn classify_text(text: &str) -> Complexity {
        classify(&parse_query(text).unwrap()).complexity
    }

    #[test]
    fn classifier_agrees_with_the_paper_on_every_named_query() {
        for nq in catalogue::all_named_queries() {
            let got = classify(&nq.query).complexity;
            let ok = match nq.paper_class {
                PaperClass::PTime => got.is_ptime(),
                PaperClass::NpComplete => got.is_np_complete(),
                PaperClass::Open => got.is_open(),
            };
            assert!(
                ok,
                "{} ({}): paper says {:?}, classifier says {}",
                nq.name, nq.reference, nq.paper_class, got
            );
        }
    }

    #[test]
    fn triangle_is_hard_via_triad() {
        match classify_text("R(x,y), S(y,z), T(z,x)") {
            Complexity::NpComplete(HardnessReason::Triad(_)) => {}
            other => panic!("expected triad hardness, got {other}"),
        }
    }

    #[test]
    fn chain_is_hard_via_chain() {
        match classify_text("R(x,y), R(y,z)") {
            Complexity::NpComplete(HardnessReason::Chain(2)) => {}
            other => panic!("expected 2-chain hardness, got {other}"),
        }
    }

    #[test]
    fn vc_is_hard_via_unary_path() {
        assert_eq!(
            classify_text("R(x), S(x,y), R(y)"),
            Complexity::NpComplete(HardnessReason::UnaryPath)
        );
    }

    #[test]
    fn three_chain_is_hard() {
        match classify_text("R(x,y), R(y,z), R(z,w)") {
            Complexity::NpComplete(HardnessReason::Chain(3)) => {}
            other => panic!("expected 3-chain hardness, got {other}"),
        }
    }

    #[test]
    fn acconf_is_easy_via_confluence_flow() {
        assert_eq!(
            classify_text("A(x), R(x,y), R(z,y), C(z)"),
            Complexity::PTime(PtimeAlgorithm::ConfluenceFlow)
        );
    }

    #[test]
    fn cfp_is_hard_via_exogenous_path() {
        assert_eq!(
            classify_text("R(x,y), H^x(x,z), R(z,y)"),
            Complexity::NpComplete(HardnessReason::ConfluenceExogenousPath)
        );
    }

    #[test]
    fn permutations_split_on_boundedness() {
        assert_eq!(
            classify_text("A(x), R(x,y), R(y,x)"),
            Complexity::PTime(PtimeAlgorithm::UnboundPermutation)
        );
        assert_eq!(
            classify_text("A(x), R(x,y), R(y,x), B(y)"),
            Complexity::NpComplete(HardnessReason::BoundPermutation)
        );
    }

    #[test]
    fn rep_with_shared_variable_is_easy() {
        assert_eq!(
            classify_text("R(x,x), R(x,y), A(y)"),
            Complexity::PTime(PtimeAlgorithm::RepeatedVariableFlow)
        );
    }

    #[test]
    fn rats_is_easy_after_domination() {
        assert_eq!(
            classify_text("R(x,y), A(x), T(z,x), S(y,z)"),
            Complexity::PTime(PtimeAlgorithm::SjFreeLinearFlow)
        );
    }

    #[test]
    fn disconnected_query_uses_component_rule() {
        // One easy component and one hard component (a chain).
        match classify_text("A(x), R(x,y), S(u,v), S(v,w)") {
            Complexity::NpComplete(HardnessReason::ComponentHard(inner)) => {
                assert_eq!(*inner, HardnessReason::Chain(2));
            }
            other => panic!("expected component hardness, got {other}"),
        }
        // Two easy components.
        assert_eq!(
            classify_text("A(x), R(x,y), B(u), S(u,v)"),
            Complexity::PTime(PtimeAlgorithm::ComponentWise)
        );
    }

    #[test]
    fn fully_exogenous_query_is_unfalsifiable() {
        assert_eq!(
            classify_text("R^x(x,y), R^x(y,z)"),
            Complexity::PTime(PtimeAlgorithm::Unfalsifiable)
        );
    }

    #[test]
    fn non_minimal_queries_are_minimized_first() {
        // Example 22: the non-minimal self-join variation collapses to R(x,y),
        // which is trivially easy.
        let c = classify(&parse_query("R(x,y), R(z,y), R(z,w), R(x,w)").unwrap());
        assert!(c.complexity.is_ptime());
        assert_eq!(c.evidence.minimized.num_atoms(), 1);
        assert!(!c.evidence.notes.is_empty());
    }

    #[test]
    fn non_binary_self_join_is_open_unless_triad() {
        // A ternary self-join without a triad is outside the classified
        // fragment.
        assert_eq!(classify_text("W(x,y,z), W(y,z,u)"), Complexity::Open);
    }

    #[test]
    fn exogenous_self_join_with_linear_endogenous_part_is_easy() {
        assert_eq!(
            classify_text("A(x), R^x(x,y), R^x(y,z), C(z)"),
            Complexity::PTime(PtimeAlgorithm::SjFreeLinearFlow)
        );
    }

    #[test]
    fn structural_isomorphism_respects_renaming_and_flags() {
        let a = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let b = parse_query("P(u), Q(u,v), Q(w,v), D(w)").unwrap();
        assert!(structurally_isomorphic(&a, &b));
        // Different exogenous labelling breaks isomorphism.
        let c = parse_query("A^x(x), R(x,y), R(z,y), C(z)").unwrap();
        assert!(!structurally_isomorphic(&a, &c));
        // Different shape breaks isomorphism.
        let d = parse_query("A(x), R(x,y), R(y,z), C(z)").unwrap();
        assert!(!structurally_isomorphic(&a, &d));
    }

    #[test]
    fn isomorphism_requires_relation_bijection() {
        // Two distinct relations cannot both map onto the same target
        // relation (that would conflate a self-join with an sj-free query).
        let a = parse_query("R(x,y), S(y,z)").unwrap();
        let b = parse_query("R(x,y), R(y,z)").unwrap();
        assert!(!structurally_isomorphic(&a, &b));
        assert!(!structurally_isomorphic(&b, &a));
    }

    #[test]
    fn evidence_reports_normal_form_and_notes() {
        let c = classify(&parse_query("A(x), B(y), C(z), W(x,y,z)").unwrap());
        assert!(c.complexity.is_np_complete());
        // W must be exogenous in the normal form.
        let n = &c.evidence.normalized;
        let w_idx = n
            .atoms()
            .iter()
            .position(|a| n.schema().name(a.relation) == "W")
            .unwrap();
        assert!(n.atom(w_idx).exogenous);
        assert!(c.evidence.triad.is_some());
    }

    #[test]
    fn complexity_display_is_readable() {
        let c = classify_text("R(x,y), R(y,z)");
        let s = c.to_string();
        assert!(s.contains("NP-complete"));
        assert!(classify_text("A(x), R(x,y)").to_string().contains("PTIME"));
    }
}
