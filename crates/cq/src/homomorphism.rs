//! Query homomorphisms, containment, equivalence and minimization
//! (Section 4.1).
//!
//! For Boolean conjunctive queries the classical Chandra–Merlin results
//! apply: `q1 ⊆ q2` iff there is a homomorphism from `q2` to `q1`, and every
//! query has a unique (up to isomorphism) minimal equivalent query — its
//! *core* — obtained by removing atoms. The paper assumes all queries are
//! minimal and connected (Section 4); this module provides the
//! preprocessing that justifies the assumption.
//!
//! Homomorphisms are computed on relation symbols and argument structure
//! only; the endogenous/exogenous flag is ignored, because in the paper the
//! exogenous labelling is (re)derived from domination *after* minimization.

use crate::ids::Var;
use crate::query::Query;
use std::collections::HashMap;

/// A homomorphism from the variables of a source query to the variables of a
/// target query.
pub type VarMapping = HashMap<Var, Var>;

/// Searches for a homomorphism from `from` to `to`: a mapping `h` on variables
/// such that for every atom `R(z₁,…,z_k)` of `from`, the atom `R(h(z₁),…,h(z_k))`
/// occurs in `to` (over the same relation *name*).
///
/// Returns one witness mapping if it exists.
pub fn find_homomorphism(from: &Query, to: &Query) -> Option<VarMapping> {
    // Relation symbols are matched by name because the two queries own
    // independent schemas.
    let mut target_atoms_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, a) in to.atoms().iter().enumerate() {
        target_atoms_by_name
            .entry(to.schema().name(a.relation))
            .or_default()
            .push(i);
    }

    // Order source atoms by ascending number of candidate targets to fail fast.
    let mut order: Vec<usize> = (0..from.num_atoms()).collect();
    order.sort_by_key(|&i| {
        let name = from.schema().name(from.atom(i).relation);
        target_atoms_by_name.get(name).map_or(0, |v| v.len())
    });

    let mut mapping: VarMapping = HashMap::new();
    if assign(from, to, &target_atoms_by_name, &order, 0, &mut mapping) {
        Some(mapping)
    } else {
        None
    }
}

fn assign(
    from: &Query,
    to: &Query,
    targets: &HashMap<&str, Vec<usize>>,
    order: &[usize],
    depth: usize,
    mapping: &mut VarMapping,
) -> bool {
    if depth == order.len() {
        return true;
    }
    let src_idx = order[depth];
    let src = from.atom(src_idx);
    let name = from.schema().name(src.relation);
    let Some(candidates) = targets.get(name) else {
        return false;
    };
    for &t_idx in candidates {
        let tgt = to.atom(t_idx);
        if tgt.args.len() != src.args.len() {
            continue;
        }
        // Try to extend the mapping with src.args[i] -> tgt.args[i].
        let mut added: Vec<Var> = Vec::new();
        let mut ok = true;
        for (s, t) in src.args.iter().zip(tgt.args.iter()) {
            match mapping.get(s) {
                Some(&existing) if existing != *t => {
                    ok = false;
                    break;
                }
                Some(_) => {}
                None => {
                    mapping.insert(*s, *t);
                    added.push(*s);
                }
            }
        }
        if ok && assign(from, to, targets, order, depth + 1, mapping) {
            return true;
        }
        for v in added {
            mapping.remove(&v);
        }
    }
    false
}

/// Query containment `sub ⊆ sup`: the answers of `sub` are contained in the
/// answers of `sup` over every database. For Boolean CQs this holds iff there
/// is a homomorphism from `sup` to `sub`.
pub fn is_contained_in(sub: &Query, sup: &Query) -> bool {
    find_homomorphism(sup, sub).is_some()
}

/// Query equivalence `q1 ≡ q2` (mutual containment).
pub fn are_equivalent(q1: &Query, q2: &Query) -> bool {
    is_contained_in(q1, q2) && is_contained_in(q2, q1)
}

/// Whether `q` is minimal: no query with strictly fewer atoms is equivalent
/// to it. Equivalently, no proper sub-conjunction of `q` admits a
/// homomorphism from `q`.
pub fn is_minimal(q: &Query) -> bool {
    minimize(q).num_atoms() == q.num_atoms()
}

/// Computes the core of `q`: a minimal equivalent query obtained by removing
/// zero or more atoms (Chandra–Merlin). The paper performs this as a
/// preprocessing step before any resilience analysis (Section 4.1).
pub fn minimize(q: &Query) -> Query {
    let mut kept: Vec<usize> = (0..q.num_atoms()).collect();
    let mut current = q.clone();
    loop {
        let mut removed_any = false;
        for pos in 0..kept.len() {
            if kept.len() == 1 {
                break;
            }
            let mut candidate_idx = kept.clone();
            candidate_idx.remove(pos);
            let candidate = q.subquery(&candidate_idx);
            // The candidate is a sub-conjunction, so `current ⊆ candidate`
            // always holds. Equivalence therefore reduces to finding a
            // homomorphism from the full query into the candidate.
            if find_homomorphism(&current, &candidate).is_some() {
                kept = candidate_idx;
                current = candidate;
                removed_any = true;
                break;
            }
        }
        if !removed_any {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn identity_homomorphism_exists() {
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let h = find_homomorphism(&q, &q).unwrap();
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn chain_maps_into_single_loop() {
        // R(x,y),R(y,z) has a homomorphism into R(w,w): x,y,z -> w.
        let chain = parse_query("R(x,y), R(y,z)").unwrap();
        let loop_q = parse_query("R(w,w)").unwrap();
        assert!(find_homomorphism(&chain, &loop_q).is_some());
        // but not the other way around: R(w,w) needs some R(a,a) pattern,
        // which R(x,y),R(y,z) cannot provide unless variables collapse.
        assert!(find_homomorphism(&loop_q, &chain).is_none());
    }

    #[test]
    fn containment_of_chain_in_single_atom() {
        // q1 :- R(x,y) is contained in nothing stricter; every database
        // satisfying R(x,y),R(y,z) also satisfies R(x,y).
        let two = parse_query("R(x,y), R(y,z)").unwrap();
        let one = parse_query("R(x,y)").unwrap();
        // two ⊆ one : hom from one to two exists.
        assert!(is_contained_in(&two, &one));
        // one ⊄ two in general (a database {R(1,2)} satisfies one, not two).
        assert!(!is_contained_in(&one, &two));
    }

    #[test]
    fn example_22_non_minimal_self_join_variation() {
        // q_sj :- R(x,y), R(z,y), R(z,w), R(x,w) is equivalent to R(x,y)
        // (Example 22 of the paper).
        let q = parse_query("R(x,y), R(z,y), R(z,w), R(x,w)").unwrap();
        let m = minimize(&q);
        assert_eq!(m.num_atoms(), 1);
        assert!(!is_minimal(&q));
        assert!(is_minimal(&m));
        let single = parse_query("R(x,y)").unwrap();
        assert!(are_equivalent(&m, &single));
    }

    #[test]
    fn chain_is_minimal() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        assert!(is_minimal(&q));
        assert_eq!(minimize(&q).num_atoms(), 2);
    }

    #[test]
    fn triangle_is_minimal() {
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        assert!(is_minimal(&q));
    }

    #[test]
    fn vc_query_is_minimal() {
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        assert!(is_minimal(&q));
    }

    #[test]
    fn duplicated_atom_is_removed() {
        let q = parse_query("R(x,y), R(x,y), S(y,z)").unwrap();
        let m = minimize(&q);
        assert_eq!(m.num_atoms(), 2);
    }

    #[test]
    fn self_join_confluence_alone_is_not_minimal() {
        // q_conf :- R(x,y), R(z,y) collapses to R(x,y) (Section 7.2 notes it
        // is not minimal as a stand-alone query).
        let q = parse_query("R(x,y), R(z,y)").unwrap();
        assert_eq!(minimize(&q).num_atoms(), 1);
        // Adding A(x), C(z) makes it minimal (q_ACconf).
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        assert!(is_minimal(&q));
    }

    #[test]
    fn three_permutation_needs_anchor_to_be_minimal() {
        // q_3perm-R :- R(x,y),R(y,z),R(z,y) is not minimal on its own
        // (Section 8.4): it maps into R(y,z),R(z,y).
        let q = parse_query("R(x,y), R(y,z), R(z,y)").unwrap();
        assert!(!is_minimal(&q));
        let anchored = parse_query("A(x), R(x,y), R(y,z), R(z,y)").unwrap();
        assert!(is_minimal(&anchored));
    }

    #[test]
    fn equivalence_is_reflexive_and_respects_renaming() {
        let q1 = parse_query("R(x,y), S(y,z)").unwrap();
        let q2 = parse_query("R(a,b), S(b,c)").unwrap();
        assert!(are_equivalent(&q1, &q2));
    }

    #[test]
    fn arity_mismatch_blocks_homomorphism() {
        let q1 = parse_query("R(x,y)").unwrap();
        let q2 = parse_query("R(x)").unwrap();
        assert!(find_homomorphism(&q1, &q2).is_none());
        assert!(find_homomorphism(&q2, &q1).is_none());
    }

    #[test]
    fn mapping_respects_repeated_variables() {
        // R(x,x) can map into R(a,a) but not into R(a,b) when a != b is forced.
        let rep = parse_query("R(x,x)").unwrap();
        let plain = parse_query("R(a,b)").unwrap();
        assert!(find_homomorphism(&rep, &plain).is_none());
        let loop_q = parse_query("R(a,a)").unwrap();
        assert!(find_homomorphism(&rep, &loop_q).is_some());
        // And R(a,b) maps into R(x,x) by collapsing a,b -> x.
        assert!(find_homomorphism(&plain, &rep).is_some());
    }
}
