//! Relational vocabulary: relation symbols with names and arities.

use crate::ids::RelId;
use std::collections::HashMap;
use std::fmt;

/// Declaration of a single relation symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationDecl {
    /// Human-readable name, e.g. `"R"`, `"S"`, `"A"`.
    pub name: String,
    /// Number of attributes. The paper's *binary* queries only use arities 1
    /// and 2, but the substrate supports arbitrary arity (the tripod query
    /// `q_T` uses a ternary relation `W`).
    pub arity: usize,
}

/// A relational vocabulary `R = (R_1, ..., R_l)`.
///
/// Schemas intern relation names to [`RelId`]s so that atoms and tuples can
/// refer to relations by a `Copy` id. A schema is owned by a [`crate::Query`]
/// and cloned into database instances built against that query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<RelationDecl>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation, or returns the existing id if a relation with the
    /// same name was already declared.
    ///
    /// # Panics
    /// Panics if a relation with the same name but a *different* arity was
    /// already declared — the vocabulary fixes one arity per symbol.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> RelId {
        if let Some(&id) = self.by_name.get(name) {
            let existing = &self.relations[id.index()];
            assert_eq!(
                existing.arity, arity,
                "relation {name} declared with conflicting arities {} and {arity}",
                existing.arity
            );
            return id;
        }
        let id = RelId(self.relations.len() as u32);
        self.relations.push(RelationDecl {
            name: name.to_string(),
            arity,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a relation id by name.
    pub fn relation_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Returns the declaration of `id`.
    pub fn relation(&self, id: RelId) -> &RelationDecl {
        &self.relations[id.index()]
    }

    /// Returns the name of `id`.
    pub fn name(&self, id: RelId) -> &str {
        &self.relations[id.index()].name
    }

    /// Returns the arity of `id`.
    pub fn arity(&self, id: RelId) -> usize {
        self.relations[id.index()].arity
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether no relation has been declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates over all relation ids in declaration order.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len() as u32).map(RelId)
    }

    /// Iterates over `(id, decl)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationDecl)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, d)| (RelId(i as u32), d))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for decl in &self.relations {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", decl.name, decl.arity)?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 2);
        let a = s.add_relation("A", 1);
        assert_eq!(s.relation_id("R"), Some(r));
        assert_eq!(s.relation_id("A"), Some(a));
        assert_eq!(s.relation_id("Z"), None);
        assert_eq!(s.arity(r), 2);
        assert_eq!(s.name(a), "A");
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn re_adding_same_relation_returns_same_id() {
        let mut s = Schema::new();
        let r1 = s.add_relation("R", 2);
        let r2 = s.add_relation("R", 2);
        assert_eq!(r1, r2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting arities")]
    fn conflicting_arity_panics() {
        let mut s = Schema::new();
        s.add_relation("R", 2);
        s.add_relation("R", 1);
    }

    #[test]
    fn display_lists_relations() {
        let mut s = Schema::new();
        s.add_relation("R", 2);
        s.add_relation("A", 1);
        assert_eq!(format!("{s}"), "R/2, A/1");
    }

    #[test]
    fn iteration_orders_match_declaration() {
        let mut s = Schema::new();
        s.add_relation("R", 2);
        s.add_relation("S", 2);
        s.add_relation("A", 1);
        let names: Vec<_> = s.iter().map(|(_, d)| d.name.clone()).collect();
        assert_eq!(names, vec!["R", "S", "A"]);
        assert_eq!(s.relation_ids().count(), 3);
    }
}
