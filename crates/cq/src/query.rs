//! Boolean conjunctive queries.

use crate::atom::Atom;
use crate::ids::{RelId, Var};
use crate::schema::Schema;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A Boolean conjunctive query `q :- g_1, ..., g_m`.
///
/// All variables are existential (the paper studies Boolean queries). Each
/// atom is either endogenous or exogenous; see [`Atom`]. Queries own their
/// [`Schema`] and a table of variable names used for display and parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    schema: Schema,
    atoms: Vec<Atom>,
    var_names: Vec<String>,
    name: Option<String>,
}

impl Query {
    /// Starts building a query with an empty schema.
    pub fn builder() -> QueryBuilder {
        QueryBuilder::new()
    }

    /// The vocabulary of the query.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All atoms in order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The atom at position `idx`.
    pub fn atom(&self, idx: usize) -> &Atom {
        &self.atoms[idx]
    }

    /// Number of atoms (`m` in the paper).
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// All variables of the query.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.var_names.len() as u32).map(Var)
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// Looks up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// Optional human-readable query name (e.g. `"q_chain"`).
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Returns a copy of the query with a (new) name.
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Indices of all atoms over relation `rel`.
    pub fn atoms_of(&self, rel: RelId) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter_map(|(i, a)| (a.relation == rel).then_some(i))
            .collect()
    }

    /// Indices of all endogenous atoms.
    pub fn endogenous_atoms(&self) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter_map(|(i, a)| (!a.exogenous).then_some(i))
            .collect()
    }

    /// Indices of all exogenous atoms.
    pub fn exogenous_atoms(&self) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.exogenous.then_some(i))
            .collect()
    }

    /// Relations that occur in more than one atom (the self-join relations).
    pub fn self_join_relations(&self) -> Vec<RelId> {
        let mut counts: HashMap<RelId, usize> = HashMap::new();
        for a in &self.atoms {
            *counts.entry(a.relation).or_insert(0) += 1;
        }
        let mut out: Vec<RelId> = counts
            .into_iter()
            .filter_map(|(r, c)| (c > 1).then_some(r))
            .collect();
        out.sort_unstable();
        out
    }

    /// `true` if no relation symbol is repeated (a *self-join-free* CQ).
    pub fn is_self_join_free(&self) -> bool {
        self.self_join_relations().is_empty()
    }

    /// `true` if at most one relation symbol is repeated (a *single-self-join*
    /// query, ssj).
    pub fn is_single_self_join(&self) -> bool {
        self.self_join_relations().len() <= 1
    }

    /// `true` if every relation in the query is unary or binary (a *binary
    /// query* in the paper's sense).
    pub fn is_binary(&self) -> bool {
        self.atoms.iter().all(|a| a.arity() <= 2)
    }

    /// Variables of atom `idx` as a sorted, deduplicated set.
    pub fn atom_var_set(&self, idx: usize) -> Vec<Var> {
        self.atoms[idx].var_set()
    }

    /// All atoms (indices) in which variable `v` occurs.
    pub fn atoms_with_var(&self, v: Var) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.contains_var(v).then_some(i))
            .collect()
    }

    /// Partitions the atoms into connected components (Section 4.2): two atoms
    /// are connected when they share an existential variable. Returns each
    /// component as a sorted list of atom indices.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.atoms.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for v in self.vars() {
            let touching = self.atoms_with_var(v);
            for w in touching.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(i);
        }
        let mut comps: Vec<Vec<usize>> = groups.into_values().collect();
        for c in &mut comps {
            c.sort_unstable();
        }
        comps.sort();
        comps
    }

    /// `true` if the query is connected (a single component).
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// Builds a sub-query restricted to the given atom indices, dropping
    /// variables that no longer occur. Used by minimization and by the
    /// component decomposition.
    pub fn subquery(&self, atom_indices: &[usize]) -> Query {
        let mut b = QueryBuilder::new();
        if let Some(n) = &self.name {
            b = b.name(n);
        }
        // Preserve original variable names where possible.
        let mut used: BTreeSet<Var> = BTreeSet::new();
        for &i in atom_indices {
            for &v in &self.atoms[i].args {
                used.insert(v);
            }
        }
        let mut rename: HashMap<Var, String> = HashMap::new();
        for &v in &used {
            rename.insert(v, self.var_name(v).to_string());
        }
        for &i in atom_indices {
            let a = &self.atoms[i];
            let name = self.schema.name(a.relation).to_string();
            let args: Vec<String> = a.args.iter().map(|v| rename[v].clone()).collect();
            let arg_refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
            if a.exogenous {
                b = b.exogenous_atom(&name, &arg_refs);
            } else {
                b = b.atom(&name, &arg_refs);
            }
        }
        b.build()
    }

    /// Returns a copy of the query in which the atoms at `indices` are marked
    /// exogenous (used by the domination normal form).
    pub fn with_exogenous(&self, indices: &[usize]) -> Query {
        let mut q = self.clone();
        for &i in indices {
            q.atoms[i].exogenous = true;
        }
        q
    }

    /// Checks internal consistency: every atom's arity matches its relation
    /// declaration, and every variable id is in range.
    pub fn validate(&self) -> Result<(), String> {
        for (i, a) in self.atoms.iter().enumerate() {
            let decl = self.schema.relation(a.relation);
            if decl.arity != a.args.len() {
                return Err(format!(
                    "atom #{i} over {} has {} arguments, expected {}",
                    decl.name,
                    a.args.len(),
                    decl.arity
                ));
            }
            for &v in &a.args {
                if v.index() >= self.var_names.len() {
                    return Err(format!("atom #{i} references unknown variable {v:?}"));
                }
            }
        }
        Ok(())
    }

    pub(crate) fn from_parts(
        schema: Schema,
        atoms: Vec<Atom>,
        var_names: Vec<String>,
        name: Option<String>,
    ) -> Self {
        let q = Query {
            schema,
            atoms,
            var_names,
            name,
        };
        debug_assert!(q.validate().is_ok(), "{:?}", q.validate());
        q
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n} :- ")?;
        } else {
            write!(f, "q :- ")?;
        }
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.schema.name(a.relation))?;
            if a.exogenous {
                write!(f, "^x")?;
            }
            write!(f, "(")?;
            let mut first_arg = true;
            for &v in &a.args {
                if !first_arg {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.var_name(v))?;
                first_arg = false;
            }
            write!(f, ")")?;
            first = false;
        }
        Ok(())
    }
}

/// Incremental builder for [`Query`] values.
///
/// ```
/// use cq::Query;
/// let q = Query::builder()
///     .name("q_chain")
///     .atom("R", &["x", "y"])
///     .atom("R", &["y", "z"])
///     .build();
/// assert_eq!(q.num_atoms(), 2);
/// assert_eq!(q.num_vars(), 3);
/// assert!(!q.is_self_join_free());
/// ```
#[derive(Clone, Debug, Default)]
pub struct QueryBuilder {
    schema: Schema,
    atoms: Vec<Atom>,
    var_names: Vec<String>,
    var_ids: HashMap<String, Var>,
    name: Option<String>,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the query name.
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.var_ids.get(name) {
            return v;
        }
        let v = Var(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        self.var_ids.insert(name.to_string(), v);
        v
    }

    fn push_atom(&mut self, rel: &str, args: &[&str], exogenous: bool) {
        let arity = args.len();
        let rel = self.schema.add_relation(rel, arity);
        let args: Vec<Var> = args.iter().map(|a| self.var(a)).collect();
        self.atoms.push(Atom {
            relation: rel,
            args,
            exogenous,
        });
    }

    /// Adds an endogenous atom `rel(args...)`.
    pub fn atom(mut self, rel: &str, args: &[&str]) -> Self {
        self.push_atom(rel, args, false);
        self
    }

    /// Adds an exogenous atom `rel^x(args...)`.
    pub fn exogenous_atom(mut self, rel: &str, args: &[&str]) -> Self {
        self.push_atom(rel, args, true);
        self
    }

    /// Finalizes the query.
    pub fn build(self) -> Query {
        Query::from_parts(self.schema, self.atoms, self.var_names, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Query {
        Query::builder()
            .name("q_chain")
            .atom("R", &["x", "y"])
            .atom("R", &["y", "z"])
            .build()
    }

    #[test]
    fn builder_constructs_chain() {
        let q = chain();
        assert_eq!(q.num_atoms(), 2);
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.name(), Some("q_chain"));
        assert!(q.validate().is_ok());
        assert_eq!(q.to_string(), "q_chain :- R(x,y), R(y,z)");
    }

    #[test]
    fn self_join_detection() {
        let q = chain();
        assert!(!q.is_self_join_free());
        assert!(q.is_single_self_join());
        assert!(q.is_binary());
        let r = q.schema().relation_id("R").unwrap();
        assert_eq!(q.self_join_relations(), vec![r]);
        assert_eq!(q.atoms_of(r), vec![0, 1]);
    }

    #[test]
    fn sj_free_triangle() {
        let q = Query::builder()
            .atom("R", &["x", "y"])
            .atom("S", &["y", "z"])
            .atom("T", &["z", "x"])
            .build();
        assert!(q.is_self_join_free());
        assert!(q.is_single_self_join());
        assert!(q.is_connected());
    }

    #[test]
    fn components_of_disconnected_query() {
        // q_comp :- A(x), R(x,y), R(z,w), B(w)   (Section 4.2)
        let q = Query::builder()
            .atom("A", &["x"])
            .atom("R", &["x", "y"])
            .atom("R", &["z", "w"])
            .atom("B", &["w"])
            .build();
        let comps = q.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2, 3]);
        assert!(!q.is_connected());
    }

    #[test]
    fn subquery_preserves_names_and_flags() {
        let q = Query::builder()
            .atom("A", &["x"])
            .exogenous_atom("W", &["x", "y", "z"])
            .atom("B", &["y"])
            .build();
        let sub = q.subquery(&[0, 1]);
        assert_eq!(sub.num_atoms(), 2);
        assert_eq!(sub.num_vars(), 3);
        assert!(sub.atom(1).exogenous);
        assert_eq!(sub.schema().name(sub.atom(0).relation), "A");
    }

    #[test]
    fn with_exogenous_marks_atoms() {
        let q = chain().with_exogenous(&[1]);
        assert!(!q.atom(0).exogenous);
        assert!(q.atom(1).exogenous);
        assert_eq!(q.endogenous_atoms(), vec![0]);
        assert_eq!(q.exogenous_atoms(), vec![1]);
    }

    #[test]
    fn vars_and_lookup() {
        let q = chain();
        let y = q.var_by_name("y").unwrap();
        assert_eq!(q.var_name(y), "y");
        assert_eq!(q.atoms_with_var(y), vec![0, 1]);
        assert!(q.var_by_name("nope").is_none());
        assert_eq!(q.vars().count(), 3);
    }

    #[test]
    fn ternary_relation_allowed() {
        let q = Query::builder()
            .atom("A", &["x"])
            .atom("B", &["y"])
            .atom("C", &["z"])
            .atom("W", &["x", "y", "z"])
            .build();
        assert!(!q.is_binary());
        assert!(q.is_self_join_free());
    }

    #[test]
    fn display_marks_exogenous() {
        let q = Query::builder()
            .name("q")
            .atom("A", &["x"])
            .exogenous_atom("T", &["z", "x"])
            .build();
        assert_eq!(q.to_string(), "q :- A(x), T^x(z,x)");
    }
}
