//! The binary graph of a binary conjunctive query (Definition 8).
//!
//! For binary queries the dual hypergraph loses information: it does not
//! record *at which position* a variable occurs in an atom, which matters for
//! self-joins (`R(x,y), R(y,z)` vs `R(x,y), R(z,y)` have the same hypergraph
//! but different complexity). The binary graph has one vertex per variable
//! and one labeled directed edge per atom: `A(x,y)` becomes `x --A--> y` and
//! a unary atom `A(x)` becomes a loop at `x`.

use crate::ids::{RelId, Var};
use crate::query::Query;
use std::fmt::Write as _;

/// A labeled edge of the binary graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Index of the originating atom in the query.
    pub atom: usize,
    /// Relation label.
    pub relation: RelId,
    /// Source variable (first attribute).
    pub source: Var,
    /// Target variable (second attribute, equal to `source` for unary atoms).
    pub target: Var,
    /// Whether the originating atom is exogenous.
    pub exogenous: bool,
    /// Whether the atom is unary (drawn as a loop).
    pub unary: bool,
}

/// The binary graph of a binary query.
#[derive(Clone, Debug)]
pub struct BinaryGraph {
    num_vars: usize,
    edges: Vec<Edge>,
}

impl BinaryGraph {
    /// Builds the binary graph of `q`.
    ///
    /// # Panics
    /// Panics if `q` is not a binary query (some atom has arity > 2).
    pub fn new(q: &Query) -> Self {
        assert!(
            q.is_binary(),
            "binary graphs are only defined for binary queries"
        );
        let mut edges = Vec::with_capacity(q.num_atoms());
        for (i, a) in q.atoms().iter().enumerate() {
            let (source, target, unary) = match a.args.len() {
                1 => (a.args[0], a.args[0], true),
                2 => (a.args[0], a.args[1], false),
                _ => unreachable!("checked by is_binary"),
            };
            edges.push(Edge {
                atom: i,
                relation: a.relation,
                source,
                target,
                exogenous: a.exogenous,
                unary,
            });
        }
        BinaryGraph {
            num_vars: q.num_vars(),
            edges,
        }
    }

    /// Number of vertices (variables of the query).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// All edges in atom order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edges leaving variable `v` (loops included).
    pub fn out_edges(&self, v: Var) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.source == v).collect()
    }

    /// Edges entering variable `v` (loops included).
    pub fn in_edges(&self, v: Var) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.target == v).collect()
    }

    /// Edges labeled with relation `rel`.
    pub fn edges_of(&self, rel: RelId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.relation == rel).collect()
    }

    /// In-degree + out-degree of a variable, counting loops twice.
    pub fn degree(&self, v: Var) -> usize {
        self.edges
            .iter()
            .map(|e| (e.source == v) as usize + (e.target == v) as usize)
            .sum()
    }

    /// Renders the graph in Graphviz DOT syntax, which the examples use to
    /// visualize queries the way Figures 2–5 of the paper draw them.
    pub fn to_dot(&self, q: &Query) -> String {
        let mut out = String::new();
        let name = q.name().unwrap_or("q");
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        for v in q.vars() {
            let _ = writeln!(out, "  {} [shape=circle];", q.var_name(v));
        }
        for e in &self.edges {
            let label = format!(
                "{}{}",
                q.schema().name(e.relation),
                if e.exogenous { "^x" } else { "" }
            );
            let style = if e.exogenous { ",style=dashed" } else { "" };
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\"{}];",
                q.var_name(e.source),
                q.var_name(e.target),
                label,
                style
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn chain_graph_shape() {
        let q = parse_query("q_chain :- R(x,y), R(y,z)").unwrap();
        let g = BinaryGraph::new(&q);
        assert_eq!(g.num_vars(), 3);
        assert_eq!(g.edges().len(), 2);
        let y = q.var_by_name("y").unwrap();
        assert_eq!(g.in_edges(y).len(), 1);
        assert_eq!(g.out_edges(y).len(), 1);
        assert_eq!(g.degree(y), 2);
    }

    #[test]
    fn unary_atom_is_a_loop() {
        let q = parse_query("q_vc :- R(x), S(x,y), R(y)").unwrap();
        let g = BinaryGraph::new(&q);
        let x = q.var_by_name("x").unwrap();
        let loops: Vec<_> = g.edges().iter().filter(|e| e.unary).collect();
        assert_eq!(loops.len(), 2);
        assert!(g.out_edges(x).iter().any(|e| e.unary));
        // A loop counts twice towards the degree.
        assert_eq!(g.degree(x), 3);
    }

    #[test]
    fn permutation_edges_are_antiparallel() {
        let q = parse_query("R(x,y), R(y,x)").unwrap();
        let g = BinaryGraph::new(&q);
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        assert_eq!(g.edges()[0].source, x);
        assert_eq!(g.edges()[0].target, y);
        assert_eq!(g.edges()[1].source, y);
        assert_eq!(g.edges()[1].target, x);
    }

    #[test]
    fn edges_of_relation_filter() {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let g = BinaryGraph::new(&q);
        let r = q.schema().relation_id("R").unwrap();
        assert_eq!(g.edges_of(r).len(), 2);
    }

    #[test]
    #[should_panic(expected = "binary queries")]
    fn ternary_relation_is_rejected() {
        let q = parse_query("W(x,y,z)").unwrap();
        BinaryGraph::new(&q);
    }

    #[test]
    fn dot_output_contains_labels_and_dashed_exogenous() {
        let q = parse_query("q :- A(x), R^x(x,y)").unwrap();
        let g = BinaryGraph::new(&q);
        let dot = g.to_dot(&q);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("R^x"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("x -> y"));
    }
}
