//! Exact Max-2-SAT.
//!
//! Proposition 39 (and the related Propositions 43 and 47) reduce Max-2-SAT
//! to resilience: a 2CNF formula has an assignment satisfying at least `r`
//! clauses iff the constructed database has a contingency set of a size
//! determined by `r`. Validating those gadgets requires the exact maximum
//! number of simultaneously satisfiable clauses, which this module computes
//! by exhaustive search over assignments (the validation instances have at
//! most ~20 variables).

use crate::cnf::CnfFormula;

/// Returns the maximum number of clauses of `formula` satisfiable by a single
/// assignment, together with one optimal assignment.
///
/// # Panics
/// Panics if the formula has more than 26 variables (exhaustive search would
/// be unreasonable) or if some clause has more than 2 literals.
pub fn max_2sat(formula: &CnfFormula) -> (usize, Vec<bool>) {
    assert!(
        formula.num_vars <= 26,
        "exhaustive Max-2-SAT limited to 26 variables, got {}",
        formula.num_vars
    );
    assert!(
        formula.clauses.iter().all(|c| c.len() <= 2),
        "max_2sat expects clauses of size at most 2"
    );
    let n = formula.num_vars;
    let mut best = 0usize;
    let mut best_assignment = vec![false; n];
    for mask in 0..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let sat = formula.count_satisfied(&assignment);
        if sat > best {
            best = sat;
            best_assignment = assignment;
            if best == formula.num_clauses() {
                break;
            }
        }
    }
    (best, best_assignment)
}

/// Convenience: just the optimum value.
pub fn max_2sat_value(formula: &CnfFormula) -> usize {
    max_2sat(formula).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfFormula;

    #[test]
    fn satisfiable_2cnf_attains_all_clauses() {
        let f = CnfFormula::from_clauses(
            3,
            &[
                &[(0, true), (1, true)],
                &[(1, false), (2, true)],
                &[(0, false), (2, true)],
            ],
        );
        let (value, assignment) = max_2sat(&f);
        assert_eq!(value, 3);
        assert_eq!(f.count_satisfied(&assignment), 3);
    }

    #[test]
    fn contradictory_pair_loses_exactly_one() {
        // (x) & (!x) as unit clauses: best is 1 of 2.
        let f = CnfFormula::from_clauses(1, &[&[(0, true)], &[(0, false)]]);
        assert_eq!(max_2sat_value(&f), 1);
    }

    #[test]
    fn classic_unsatisfiable_2cnf() {
        // (x|y) & (x|!y) & (!x|y) & (!x|!y): max is 3.
        let f = CnfFormula::from_clauses(
            2,
            &[
                &[(0, true), (1, true)],
                &[(0, true), (1, false)],
                &[(0, false), (1, true)],
                &[(0, false), (1, false)],
            ],
        );
        assert_eq!(max_2sat_value(&f), 3);
    }

    #[test]
    fn duplicate_clauses_count_individually() {
        let f = CnfFormula::from_clauses(2, &[&[(0, true)], &[(0, true)], &[(0, false)]]);
        assert_eq!(max_2sat_value(&f), 2);
    }

    #[test]
    fn empty_formula_has_value_zero() {
        let f = CnfFormula::new(2);
        assert_eq!(max_2sat_value(&f), 0);
    }

    #[test]
    #[should_panic(expected = "at most 2")]
    fn three_literal_clause_rejected() {
        let f = CnfFormula::from_clauses(3, &[&[(0, true), (1, true), (2, true)]]);
        max_2sat(&f);
    }

    #[test]
    fn mixed_unit_and_binary_clauses() {
        // (x0) & (!x0 | x1) & (!x1) — best assignment satisfies 2.
        let f =
            CnfFormula::from_clauses(2, &[&[(0, true)], &[(0, false), (1, true)], &[(1, false)]]);
        assert_eq!(max_2sat_value(&f), 2);
    }
}
