//! Minimum vertex cover: exact branch-and-bound, a greedy 2-approximation,
//! and the bipartite special case via maximum flow (König's theorem).
//!
//! Vertex Cover is the source problem of the `q_vc` reduction (Proposition 9),
//! the path reductions (Theorems 27–28) and the generalized reduction behind
//! Independent Join Paths (Section 9); the exact solver provides the ground
//! truth those reductions are validated against.

use crate::graph::UndirectedGraph;
use flow::{FlowNetwork, INF};
use std::collections::BTreeSet;

/// Computes a minimum vertex cover exactly via branch and bound on edges.
///
/// Exponential in the worst case, but the branching is on uncovered edges
/// (branching factor 2, depth at most the cover size), which comfortably
/// handles the instance sizes used to validate gadgets (tens of vertices).
pub fn min_vertex_cover(g: &UndirectedGraph) -> BTreeSet<usize> {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut best: Option<BTreeSet<usize>> = None;
    let mut current: BTreeSet<usize> = BTreeSet::new();
    branch(&edges, 0, &mut current, &mut best);
    best.unwrap_or_default()
}

fn branch(
    edges: &[(usize, usize)],
    from: usize,
    current: &mut BTreeSet<usize>,
    best: &mut Option<BTreeSet<usize>>,
) {
    if let Some(b) = best {
        if current.len() >= b.len() {
            return; // cannot improve
        }
    }
    // Find the first uncovered edge.
    let uncovered = edges[from..]
        .iter()
        .position(|&(u, v)| !current.contains(&u) && !current.contains(&v))
        .map(|i| from + i);
    let Some(idx) = uncovered else {
        // All edges covered: record if better.
        if best.as_ref().is_none_or(|b| current.len() < b.len()) {
            *best = Some(current.clone());
        }
        return;
    };
    let (u, v) = edges[idx];
    for pick in [u, v] {
        current.insert(pick);
        branch(edges, idx + 1, current, best);
        current.remove(&pick);
    }
}

/// Size of a minimum vertex cover.
pub fn min_vertex_cover_size(g: &UndirectedGraph) -> usize {
    min_vertex_cover(g).len()
}

/// Classic maximal-matching 2-approximation.
pub fn greedy_vertex_cover(g: &UndirectedGraph) -> BTreeSet<usize> {
    let mut cover = BTreeSet::new();
    for (u, v) in g.edges() {
        if !cover.contains(&u) && !cover.contains(&v) {
            cover.insert(u);
            cover.insert(v);
        }
    }
    cover
}

/// Minimum vertex cover of a *bipartite* graph via maximum matching /
/// maximum flow (König's theorem). Returns `None` when the graph is not
/// bipartite.
pub fn bipartite_min_vertex_cover(g: &UndirectedGraph) -> Option<usize> {
    let colouring = g.bipartition()?;
    let n = g.num_vertices();
    let mut network = FlowNetwork::new();
    let s = network.add_node();
    let t = network.add_node();
    let nodes = network.add_nodes(n);
    for v in 0..n {
        if colouring[v] {
            network.add_edge(nodes[v], t, 1);
        } else {
            network.add_edge(s, nodes[v], 1);
        }
    }
    for (u, v) in g.edges() {
        let (left, right) = if colouring[u] { (v, u) } else { (u, v) };
        network.add_edge(nodes[left], nodes[right], INF);
    }
    Some(network.max_flow_dinic(s, t) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1);
        }
        g
    }

    fn cycle_graph(n: usize) -> UndirectedGraph {
        let mut g = path_graph(n);
        if n > 2 {
            g.add_edge(n - 1, 0);
        }
        g
    }

    fn complete_graph(n: usize) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        g
    }

    #[test]
    fn single_edge_cover_is_one() {
        let mut g = UndirectedGraph::new(2);
        g.add_edge(0, 1);
        assert_eq!(min_vertex_cover_size(&g), 1);
    }

    #[test]
    fn path_cover_sizes() {
        // A path on n vertices needs floor(n/2) cover vertices.
        assert_eq!(min_vertex_cover_size(&path_graph(2)), 1);
        assert_eq!(min_vertex_cover_size(&path_graph(3)), 1);
        assert_eq!(min_vertex_cover_size(&path_graph(4)), 2);
        assert_eq!(min_vertex_cover_size(&path_graph(5)), 2);
        assert_eq!(min_vertex_cover_size(&path_graph(7)), 3);
    }

    #[test]
    fn cycle_cover_sizes() {
        // A cycle on n vertices needs ceil(n/2).
        assert_eq!(min_vertex_cover_size(&cycle_graph(4)), 2);
        assert_eq!(min_vertex_cover_size(&cycle_graph(5)), 3);
        assert_eq!(min_vertex_cover_size(&cycle_graph(6)), 3);
        assert_eq!(min_vertex_cover_size(&cycle_graph(7)), 4);
    }

    #[test]
    fn complete_graph_cover() {
        // K_n needs n-1 vertices.
        assert_eq!(min_vertex_cover_size(&complete_graph(4)), 3);
        assert_eq!(min_vertex_cover_size(&complete_graph(5)), 4);
    }

    #[test]
    fn star_graph_cover_is_center() {
        let mut g = UndirectedGraph::new(6);
        for leaf in 1..6 {
            g.add_edge(0, leaf);
        }
        let cover = min_vertex_cover(&g);
        assert_eq!(cover.len(), 1);
        assert!(cover.contains(&0));
    }

    #[test]
    fn exact_cover_is_a_cover() {
        let g = cycle_graph(7);
        let cover = min_vertex_cover(&g);
        assert!(g.is_vertex_cover(&cover));
    }

    #[test]
    fn greedy_is_a_cover_and_at_most_twice_optimal() {
        for g in [path_graph(7), cycle_graph(8), complete_graph(5)] {
            let greedy = greedy_vertex_cover(&g);
            assert!(g.is_vertex_cover(&greedy));
            let opt = min_vertex_cover_size(&g);
            assert!(greedy.len() <= 2 * opt);
        }
    }

    #[test]
    fn bipartite_cover_matches_exact_on_bipartite_graphs() {
        // Even cycles and paths are bipartite; König must agree with B&B.
        for g in [path_graph(6), cycle_graph(6), cycle_graph(8), path_graph(9)] {
            let exact = min_vertex_cover_size(&g);
            let koenig = bipartite_min_vertex_cover(&g).expect("bipartite");
            assert_eq!(exact, koenig);
        }
    }

    #[test]
    fn bipartite_solver_rejects_odd_cycles() {
        assert!(bipartite_min_vertex_cover(&cycle_graph(5)).is_none());
    }

    #[test]
    fn empty_graph_has_empty_cover() {
        let g = UndirectedGraph::new(5);
        assert_eq!(min_vertex_cover_size(&g), 0);
        assert!(greedy_vertex_cover(&g).is_empty());
        assert_eq!(bipartite_min_vertex_cover(&g), Some(0));
    }

    #[test]
    fn complete_bipartite_graph() {
        // K_{3,4}: minimum cover is the smaller side, size 3.
        let mut g = UndirectedGraph::new(7);
        for left in 0..3 {
            for right in 3..7 {
                g.add_edge(left, right);
            }
        }
        assert_eq!(min_vertex_cover_size(&g), 3);
        assert_eq!(bipartite_min_vertex_cover(&g), Some(3));
    }
}
