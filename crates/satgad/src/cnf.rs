//! CNF formulas and a DPLL satisfiability solver.

use std::collections::HashSet;
use std::fmt;

/// A literal: a variable index (0-based) with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// The propositional variable, 0-based.
    pub var: usize,
    /// `true` for the positive literal, `false` for the negation.
    pub positive: bool,
}

impl Literal {
    /// Positive literal of variable `var`.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// Negative literal of variable `var`.
    pub fn neg(var: usize) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Self {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluates the literal under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "!x{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Literal>;

/// A CNF formula over `num_vars` propositional variables.
#[derive(Clone, Debug, Default)]
pub struct CnfFormula {
    /// Number of variables (variables are `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Creates a formula with `num_vars` variables and no clauses.
    pub fn new(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause (and grows `num_vars` if the clause mentions a larger
    /// variable index).
    pub fn add_clause(&mut self, clause: Clause) {
        for lit in &clause {
            if lit.var >= self.num_vars {
                self.num_vars = lit.var + 1;
            }
        }
        self.clauses.push(clause);
    }

    /// Convenience constructor from `(var, polarity)` triples, one clause per
    /// inner slice.
    pub fn from_clauses(num_vars: usize, clauses: &[&[(usize, bool)]]) -> Self {
        let mut f = CnfFormula::new(num_vars);
        for c in clauses {
            f.add_clause(
                c.iter()
                    .map(|&(v, p)| Literal {
                        var: v,
                        positive: p,
                    })
                    .collect(),
            );
        }
        f
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// `true` when every clause has exactly three literals.
    pub fn is_3cnf(&self) -> bool {
        self.clauses.iter().all(|c| c.len() == 3)
    }

    /// Evaluates the formula under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Number of clauses satisfied by an assignment.
    pub fn count_satisfied(&self, assignment: &[bool]) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.iter().any(|l| l.eval(assignment)))
            .count()
    }

    /// Decides satisfiability with DPLL (unit propagation + pure-literal
    /// elimination) and returns a satisfying assignment if one exists.
    pub fn solve(&self) -> Option<Vec<bool>> {
        // Assignment: None = unassigned.
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        if self.dpll(&mut assignment) {
            Some(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
        } else {
            None
        }
    }

    /// `true` iff the formula is satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        self.solve().is_some()
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation and conflict detection.
        loop {
            let mut unit: Option<Literal> = None;
            for clause in &self.clauses {
                let mut unassigned: Option<Literal> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for &lit in clause {
                    match assignment[lit.var] {
                        Some(v) if v == lit.positive => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => return false, // conflict
                    1 => {
                        unit = unassigned;
                        break;
                    }
                    _ => {}
                }
            }
            match unit {
                Some(lit) => assignment[lit.var] = Some(lit.positive),
                None => break,
            }
        }

        // Pure literal elimination.
        let mut seen_pos: HashSet<usize> = HashSet::new();
        let mut seen_neg: HashSet<usize> = HashSet::new();
        for clause in &self.clauses {
            let satisfied = clause.iter().any(|l| assignment[l.var] == Some(l.positive));
            if satisfied {
                continue;
            }
            for &lit in clause {
                if assignment[lit.var].is_none() {
                    if lit.positive {
                        seen_pos.insert(lit.var);
                    } else {
                        seen_neg.insert(lit.var);
                    }
                }
            }
        }
        for &v in &seen_pos {
            if !seen_neg.contains(&v) && assignment[v].is_none() {
                assignment[v] = Some(true);
            }
        }
        for &v in &seen_neg {
            if !seen_pos.contains(&v) && assignment[v].is_none() {
                assignment[v] = Some(false);
            }
        }

        // Check whether all clauses are satisfied / find a branching variable.
        let mut branch_var: Option<usize> = None;
        for clause in &self.clauses {
            let satisfied = clause.iter().any(|l| assignment[l.var] == Some(l.positive));
            if satisfied {
                continue;
            }
            let unassigned: Vec<usize> = clause
                .iter()
                .filter(|l| assignment[l.var].is_none())
                .map(|l| l.var)
                .collect();
            if unassigned.is_empty() {
                return false;
            }
            branch_var = Some(unassigned[0]);
        }
        let Some(v) = branch_var else {
            return true; // every clause satisfied
        };
        for value in [true, false] {
            let mut next = assignment.clone();
            next[v] = Some(value);
            if self.dpll(&mut next) {
                *assignment = next;
                return true;
            }
        }
        false
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let clause_strs: Vec<String> = self
            .clauses
            .iter()
            .map(|c| {
                let lits: Vec<String> = c.iter().map(|l| format!("{l:?}")).collect();
                format!("({})", lits.join(" | "))
            })
            .collect();
        write!(f, "{}", clause_strs.join(" & "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_basics() {
        let l = Literal::pos(3);
        assert_eq!(l.negated(), Literal::neg(3));
        assert!(l.eval(&[false, false, false, true]));
        assert!(!l.negated().eval(&[false, false, false, true]));
        assert_eq!(format!("{:?}", Literal::neg(1)), "!x1");
    }

    #[test]
    fn trivially_satisfiable_formula() {
        let f = CnfFormula::from_clauses(2, &[&[(0, true), (1, false)]]);
        let a = f.solve().unwrap();
        assert!(f.eval(&a));
        assert!(f.is_satisfiable());
    }

    #[test]
    fn simple_unsatisfiable_formula() {
        // (x) & (!x)
        let f = CnfFormula::from_clauses(1, &[&[(0, true)], &[(0, false)]]);
        assert!(!f.is_satisfiable());
    }

    #[test]
    fn pigeonhole_like_unsat() {
        // (x | y) & (!x | y) & (x | !y) & (!x | !y) is unsatisfiable.
        let f = CnfFormula::from_clauses(
            2,
            &[
                &[(0, true), (1, true)],
                &[(0, false), (1, true)],
                &[(0, true), (1, false)],
                &[(0, false), (1, false)],
            ],
        );
        assert!(!f.is_satisfiable());
    }

    #[test]
    fn three_cnf_detection_and_solution() {
        // (x0 | x1 | x2) & (!x0 | !x1 | x2) & (x0 | !x2 | x3)
        let f = CnfFormula::from_clauses(
            4,
            &[
                &[(0, true), (1, true), (2, true)],
                &[(0, false), (1, false), (2, true)],
                &[(0, true), (2, false), (3, true)],
            ],
        );
        assert!(f.is_3cnf());
        let a = f.solve().unwrap();
        assert!(f.eval(&a));
        assert_eq!(f.count_satisfied(&a), 3);
    }

    #[test]
    fn unsatisfiable_3cnf_core() {
        // All eight clauses over three variables: unsatisfiable.
        let mut f = CnfFormula::new(3);
        for mask in 0..8u8 {
            f.add_clause(
                (0..3)
                    .map(|v| Literal {
                        var: v,
                        positive: mask & (1 << v) != 0,
                    })
                    .collect(),
            );
        }
        assert!(f.is_3cnf());
        assert!(!f.is_satisfiable());
        // Any assignment satisfies exactly 7 of the 8 clauses.
        assert_eq!(f.count_satisfied(&[true, false, true]), 7);
    }

    #[test]
    fn exhaustive_agreement_on_small_formulas() {
        // DPLL agrees with brute force on a fixed family of small formulas.
        let formulas = vec![
            CnfFormula::from_clauses(
                3,
                &[
                    &[(0, true), (1, true), (2, false)],
                    &[(0, false), (1, false), (2, false)],
                    &[(1, true), (2, true), (0, false)],
                ],
            ),
            CnfFormula::from_clauses(
                4,
                &[
                    &[(0, true), (1, false), (3, true)],
                    &[(2, true), (1, true), (3, false)],
                    &[(0, false), (2, false), (3, true)],
                    &[(0, false), (1, false), (2, true)],
                ],
            ),
        ];
        for f in formulas {
            let brute = (0..1u32 << f.num_vars).any(|mask| {
                let assignment: Vec<bool> = (0..f.num_vars).map(|i| mask & (1 << i) != 0).collect();
                f.eval(&assignment)
            });
            assert_eq!(f.is_satisfiable(), brute);
        }
    }

    #[test]
    fn add_clause_grows_num_vars() {
        let mut f = CnfFormula::new(0);
        f.add_clause(vec![Literal::pos(5)]);
        assert_eq!(f.num_vars, 6);
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn display_is_readable() {
        let f = CnfFormula::from_clauses(2, &[&[(0, true), (1, false)]]);
        assert_eq!(f.to_string(), "(x0 | !x1)");
    }
}
