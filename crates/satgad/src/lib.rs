//! SAT and Vertex Cover substrate for the hardness reductions.
//!
//! The paper's NP-hardness proofs reduce from three source problems:
//!
//! * **3SAT** (Propositions 10, 23, 34, 45, 56 and the chain-expansion
//!   lemmas) — [`cnf`] provides CNF formulas and a DPLL solver;
//! * **Max-2-SAT** (Propositions 39, 43, 47) — [`max2sat`] provides an exact
//!   (exponential, but small-instance) maximiser;
//! * **Vertex Cover** (Proposition 9, Theorems 27–28 and the Independent
//!   Join Path template of Section 9) — [`vertex_cover`] provides exact
//!   minimum vertex cover, a 2-approximation and the bipartite special case
//!   via network flow (König's theorem).
//!
//! Having exact solvers for the *source* problems is what lets the test
//! suite and benchmarks validate each gadget experimentally: a reduction is
//! correct on an instance iff the source optimum and the resilience of the
//! constructed database line up exactly as the paper's accounting predicts.

pub mod cnf;
pub mod graph;
pub mod max2sat;
pub mod vertex_cover;

pub use cnf::{Clause, CnfFormula, Literal};
pub use graph::UndirectedGraph;
pub use max2sat::{max_2sat, max_2sat_value};
pub use vertex_cover::{
    bipartite_min_vertex_cover, greedy_vertex_cover, min_vertex_cover, min_vertex_cover_size,
};
