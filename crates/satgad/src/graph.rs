//! Simple undirected graphs used as Vertex Cover instances.

use std::collections::BTreeSet;

/// An undirected graph on vertices `0..num_vertices` with a set of edges.
///
/// Parallel edges are collapsed and self-loops are rejected (a self-loop
/// would force its vertex into every cover, which none of the reductions in
/// the paper use).
#[derive(Clone, Debug, Default)]
pub struct UndirectedGraph {
    num_vertices: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl UndirectedGraph {
    /// Creates a graph with `num_vertices` vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        UndirectedGraph {
            num_vertices,
            edges: BTreeSet::new(),
        }
    }

    /// Adds an undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range vertices.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u != v, "self-loops are not supported");
        assert!(
            u < self.num_vertices && v < self.num_vertices,
            "vertex out of range"
        );
        let e = (u.min(v), u.max(v));
        self.edges.insert(e);
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (distinct) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges as normalized `(min, max)` pairs, in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// The degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == v || b == v)
            .count()
    }

    /// Whether `cover` (a set of vertices) covers every edge.
    pub fn is_vertex_cover(&self, cover: &BTreeSet<usize>) -> bool {
        self.edges
            .iter()
            .all(|&(u, v)| cover.contains(&u) || cover.contains(&v))
    }

    /// Attempts to 2-colour the graph; returns the colouring if the graph is
    /// bipartite.
    pub fn bipartition(&self) -> Option<Vec<bool>> {
        let mut colour: Vec<Option<bool>> = vec![None; self.num_vertices];
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); self.num_vertices];
        for &(u, v) in &self.edges {
            adjacency[u].push(v);
            adjacency[v].push(u);
        }
        for start in 0..self.num_vertices {
            if colour[start].is_some() {
                continue;
            }
            colour[start] = Some(false);
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                let cu = colour[u].unwrap();
                for &v in &adjacency[u] {
                    match colour[v] {
                        None => {
                            colour[v] = Some(!cu);
                            stack.push(v);
                        }
                        Some(cv) if cv == cu => return None,
                        Some(_) => {}
                    }
                }
            }
        }
        Some(colour.into_iter().map(|c| c.unwrap_or(false)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_edges() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0); // duplicate collapses
        g.add_edge(2, 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = UndirectedGraph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn vertex_cover_check() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let cover: BTreeSet<usize> = [1].into_iter().collect();
        assert!(g.is_vertex_cover(&cover));
        let bad: BTreeSet<usize> = [0].into_iter().collect();
        assert!(!g.is_vertex_cover(&bad));
    }

    #[test]
    fn bipartition_of_even_cycle() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        let colouring = g.bipartition().unwrap();
        for (u, v) in g.edges() {
            assert_ne!(colouring[u], colouring[v]);
        }
    }

    #[test]
    fn odd_cycle_is_not_bipartite() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert!(g.bipartition().is_none());
    }

    #[test]
    fn disconnected_graph_bipartition() {
        let mut g = UndirectedGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        assert!(g.bipartition().is_some());
    }
}
