//! Reproducible workload generators for tests and benchmarks.
//!
//! Every generator is driven by a seeded [`rand::rngs::StdRng`], so each
//! benchmark and experiment in the harness regenerates exactly the same
//! inputs run after run. The generators cover the three kinds of inputs the
//! evaluation needs:
//!
//! * random database instances conforming to a query's schema (uniform
//!   tuples over a bounded active domain, with tunable density);
//! * random directed-graph relations (for the chain, permutation and
//!   confluence workloads);
//! * random 3-CNF formulas and random undirected graphs (sources for the
//!   hardness gadgets).

use cq::Query;
use database::Database;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use satgad::{CnfFormula, Literal, UndirectedGraph};

/// A seeded workload generator.
#[derive(Clone, Debug)]
pub struct Workload {
    rng: StdRng,
}

impl Workload {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Workload {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates a random database for `q`: each relation receives
    /// `tuples_per_relation` uniform tuples over the domain
    /// `0..domain_size` (duplicates collapse, so relations may end up
    /// slightly smaller).
    pub fn random_database(
        &mut self,
        q: &Query,
        tuples_per_relation: usize,
        domain_size: u64,
    ) -> Database {
        let mut db = Database::for_query(q);
        let domain = domain_size.max(1);
        for rel in q.schema().relation_ids() {
            let arity = q.schema().arity(rel);
            let db_rel = db
                .schema()
                .relation_id(q.schema().name(rel))
                .expect("same schema");
            for _ in 0..tuples_per_relation {
                let values: Vec<u64> = (0..arity).map(|_| self.rng.gen_range(0..domain)).collect();
                db.insert(db_rel, &values);
            }
        }
        db
    }

    /// Generates a random binary relation (directed graph) with `nodes`
    /// vertices where each ordered pair is present independently with
    /// probability `density`. The tuples are inserted into relation
    /// `rel_name` of a fresh database for `q`.
    pub fn random_graph_relation(
        &mut self,
        q: &Query,
        rel_name: &str,
        nodes: u64,
        density: f64,
    ) -> Database {
        let mut db = Database::for_query(q);
        for a in 0..nodes {
            for b in 0..nodes {
                if self.rng.gen_bool(density.clamp(0.0, 1.0)) {
                    db.insert_named(rel_name, &[a, b]);
                }
            }
        }
        db
    }

    /// Fills every *unary* relation of `q` with all values of `0..domain`,
    /// on top of an existing database. Useful for the unary-anchored
    /// workloads (`q_achain`, `q_ACconf`, `q_ABperm`, …).
    pub fn saturate_unary_relations(&mut self, q: &Query, db: &mut Database, domain: u64) {
        for rel in q.schema().relation_ids() {
            if q.schema().arity(rel) != 1 {
                continue;
            }
            let name = q.schema().name(rel).to_string();
            for v in 0..domain {
                db.insert_named(&name, &[v]);
            }
        }
    }

    /// Random symmetric-heavy binary relation: with probability
    /// `symmetric_bias`, the reverse tuple of every generated edge is added
    /// too. Exercises the permutation workloads, which are only interesting
    /// when symmetric pairs exist.
    pub fn random_symmetric_relation(
        &mut self,
        q: &Query,
        rel_name: &str,
        nodes: u64,
        edges: usize,
        symmetric_bias: f64,
    ) -> Database {
        let mut db = Database::for_query(q);
        for _ in 0..edges {
            let a = self.rng.gen_range(0..nodes);
            let b = self.rng.gen_range(0..nodes);
            db.insert_named(rel_name, &[a, b]);
            if self.rng.gen_bool(symmetric_bias.clamp(0.0, 1.0)) {
                db.insert_named(rel_name, &[b, a]);
            }
        }
        db
    }

    /// Random Erdős–Rényi undirected graph `G(n, p)`.
    pub fn random_undirected_graph(&mut self, n: usize, p: f64) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if self.rng.gen_bool(p.clamp(0.0, 1.0)) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// A random sequence of distinct endogenous tuples of `db` (with respect
    /// to `q`), up to `len` long: the k-deletion sweeps of the what-if
    /// benchmarks and the session differential tests delete these one by
    /// one. Deterministic for a given seed, like every generator here.
    pub fn random_deletion_sequence(
        &mut self,
        q: &Query,
        db: &Database,
        len: usize,
    ) -> Vec<database::TupleId> {
        let mut candidates = db.endogenous_tuples(q);
        candidates.shuffle(&mut self.rng);
        candidates.truncate(len);
        candidates
    }

    /// One random shape-preserving variant of `q`: atoms permuted and
    /// variables bijectively renamed (relation names, exogenous flags and
    /// the query name are kept). The result is shape-isomorphic to `q`
    /// (`cq::canon::shape_isomorphic`), so every variant canonicalizes to
    /// the same form — the workload the plan cache deduplicates.
    pub fn query_variant(&mut self, q: &Query) -> Query {
        let mut atom_order: Vec<usize> = (0..q.num_atoms()).collect();
        atom_order.shuffle(&mut self.rng);
        let mut name_perm: Vec<usize> = (0..q.num_vars()).collect();
        name_perm.shuffle(&mut self.rng);
        let names: Vec<String> = name_perm.into_iter().map(|i| format!("u{i}")).collect();
        let mut b = Query::builder();
        if let Some(n) = q.name() {
            b = b.name(n);
        }
        for &i in &atom_order {
            let a = q.atom(i);
            let rel = q.schema().name(a.relation).to_string();
            let args: Vec<&str> = a.args.iter().map(|v| names[v.index()].as_str()).collect();
            b = if a.exogenous {
                b.exogenous_atom(&rel, &args)
            } else {
                b.atom(&rel, &args)
            };
        }
        b.build()
    }

    /// `count` random variants of `q` (see [`Workload::query_variant`]),
    /// deterministic for a given seed — the catalogue-variant stream the
    /// cache benchmarks and differential gates replay.
    pub fn query_variants(&mut self, q: &Query, count: usize) -> Vec<Query> {
        (0..count).map(|_| self.query_variant(q)).collect()
    }

    /// Random 3-CNF formula with `num_vars` variables and `num_clauses`
    /// clauses; each clause has three distinct variables with random signs.
    pub fn random_3cnf(&mut self, num_vars: usize, num_clauses: usize) -> CnfFormula {
        assert!(num_vars >= 3, "need at least 3 variables for 3-CNF clauses");
        let mut formula = CnfFormula::new(num_vars);
        let mut vars: Vec<usize> = (0..num_vars).collect();
        for _ in 0..num_clauses {
            vars.shuffle(&mut self.rng);
            let clause: Vec<Literal> = vars[..3]
                .iter()
                .map(|&v| Literal {
                    var: v,
                    positive: self.rng.gen_bool(0.5),
                })
                .collect();
            formula.add_clause(clause);
        }
        formula
    }
}

/// A scalable, replayable tuple stream: the generator behind the sharded /
/// streaming benchmarks, where the instance must never be materialized in
/// one `Vec`.
///
/// The spec is a pure description — [`StreamSpec::stream`] starts a fresh
/// pass that replays the identical sequence every time, which is exactly
/// the contract `database::shard::write_shard_snapshots` needs for its
/// multi-pass bounded-memory pipeline. Structure:
///
/// * **`groups` planted components.** Group `g` draws all constants from
///   the disjoint range `[g·width, (g+1)·width)`, so groups can never join
///   and the instance has at least `groups` constant-connected components —
///   the partitioner's raw material.
/// * **Zipf-skewed relation sizes.** Within each group, relation `k` (in
///   schema order) receives a share proportional to `1/(k+1)^skew`, so the
///   head relation dominates like real skewed workloads do.
/// * **Duplicate-free by construction.** The `i`-th tuple of a relation in
///   a group writes the base-`width` digits of `i` (each digit shifted by a
///   seeded per-position salt, a bijection on the digit) into its columns,
///   so distinct `i` always produce distinct tuples. Stream positions
///   therefore coincide with whole-instance [`database::TupleId`]s, and
///   shard `source_ids` translate exactly.
///
/// Arity-1 relation counts are clamped to `width` (a unary relation over a
/// `width`-sized domain cannot hold more distinct tuples), so the emitted
/// total can be slightly below the requested one; [`StreamSpec::len`]
/// reports the exact emitted count.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    schema: cq::Schema,
    rels: Vec<cq::RelId>,
    seed: u64,
    total: usize,
    groups: usize,
    width: u64,
    skew: f64,
}

impl StreamSpec {
    /// Builds a spec over `q`'s schema.
    ///
    /// # Panics
    /// Panics if a relation's arity exceeds
    /// [`database::shard::MAX_STREAM_ARITY`] or if `width == 0`.
    pub fn for_query(q: &Query, seed: u64, total: usize, groups: usize, width: u64) -> StreamSpec {
        let schema = q.schema().clone();
        let rels: Vec<cq::RelId> = schema.relation_ids().collect();
        for &r in &rels {
            assert!(
                schema.arity(r) <= database::shard::MAX_STREAM_ARITY,
                "relation {} has arity {} > MAX_STREAM_ARITY",
                schema.name(r),
                schema.arity(r)
            );
        }
        assert!(width > 0, "group constant width must be positive");
        StreamSpec {
            schema,
            rels,
            seed,
            total,
            groups: groups.max(1),
            width,
            skew: 1.0,
        }
    }

    /// Sets the Zipf exponent for per-relation sizes (default `1.0`;
    /// `0.0` = uniform).
    pub fn skew(mut self, skew: f64) -> StreamSpec {
        self.skew = skew.max(0.0);
        self
    }

    /// The schema tuples are emitted against (shared with shard builders).
    pub fn schema(&self) -> &cq::Schema {
        &self.schema
    }

    fn group_total(&self, g: usize) -> usize {
        self.total / self.groups + usize::from(g < self.total % self.groups)
    }

    /// Tuples relation `k` (schema order) receives out of `group_total`,
    /// by largest-prefix Zipf apportionment: exact, deterministic, sums to
    /// `group_total` before the unary clamp.
    fn relation_count(&self, k: usize, group_total: usize) -> usize {
        let weight = |j: usize| 1.0 / ((j + 1) as f64).powf(self.skew);
        let total_w: f64 = (0..self.rels.len()).map(weight).sum();
        let before: f64 = (0..k).map(weight).sum();
        let lo = (group_total as f64 * before / total_w).floor() as usize;
        let hi = (group_total as f64 * (before + weight(k)) / total_w).floor() as usize;
        let count = hi - lo;
        if self.schema.arity(self.rels[k]) == 1 {
            count.min(self.width as usize)
        } else {
            count
        }
    }

    /// Exact number of tuples one pass emits.
    pub fn len(&self) -> usize {
        (0..self.groups)
            .map(|g| {
                let gt = self.group_total(g);
                (0..self.rels.len())
                    .map(|k| self.relation_count(k, gt))
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether a pass emits nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Starts a fresh pass; every pass replays the identical sequence.
    pub fn stream(&self) -> TupleStream<'_> {
        TupleStream {
            spec: self,
            group: 0,
            rel: 0,
            next: 0,
            count: 0,
            primed: false,
        }
    }

    /// The whole instance, materialized by replaying one pass — the
    /// fits-in-RAM baseline the streaming path is compared against.
    /// Because the stream is duplicate-free, tuple ids equal stream
    /// positions.
    pub fn materialize(&self) -> Database {
        let mut db = Database::new(self.schema.clone());
        for t in self.stream() {
            db.insert(t.rel(), t.values());
        }
        db
    }

    /// The `i`-th tuple of relation index `k` in group `g`.
    fn tuple_at(&self, g: usize, k: usize, i: usize) -> database::StreamTuple {
        let rel = self.rels[k];
        let arity = self.schema.arity(rel);
        let base = g as u64 * self.width;
        let mut values = [database::Constant(0); database::shard::MAX_STREAM_ARITY];
        let mut rest = i as u64;
        for (j, slot) in values.iter_mut().take(arity).enumerate() {
            let salt = splitmix64(
                self.seed
                    ^ (g as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ (k as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
                    ^ j as u64,
            );
            let digit = rest % self.width;
            rest /= self.width;
            *slot = database::Constant(base + (digit + salt % self.width) % self.width);
        }
        database::StreamTuple::new(rel, &values[..arity])
    }
}

/// One replay pass of a [`StreamSpec`]; see there for the sequence's
/// structure.
#[derive(Clone, Debug)]
pub struct TupleStream<'a> {
    spec: &'a StreamSpec,
    group: usize,
    rel: usize,
    next: usize,
    count: usize,
    primed: bool,
}

impl Iterator for TupleStream<'_> {
    type Item = database::StreamTuple;

    fn next(&mut self) -> Option<database::StreamTuple> {
        if self.spec.rels.is_empty() {
            return None;
        }
        loop {
            if self.group >= self.spec.groups {
                return None;
            }
            if !self.primed {
                self.count = self
                    .spec
                    .relation_count(self.rel, self.spec.group_total(self.group));
                self.next = 0;
                self.primed = true;
            }
            if self.next < self.count {
                let t = self.spec.tuple_at(self.group, self.rel, self.next);
                self.next += 1;
                return Some(t);
            }
            // Advance to the next (group, relation) cell.
            self.primed = false;
            self.rel += 1;
            if self.rel >= self.spec.rels.len() {
                self.rel = 0;
                self.group += 1;
            }
        }
    }
}

/// SplitMix64: the salt derivation for [`StreamSpec`]'s digit shifts.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    #[test]
    fn same_seed_reproduces_the_same_database() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let a = Workload::new(7).random_database(&q, 30, 10);
        let b = Workload::new(7).random_database(&q, 30, 10);
        assert_eq!(a.num_tuples(), b.num_tuples());
        for t in a.all_tuples() {
            assert_eq!(a.values_of(t), b.values_of(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let a = Workload::new(1).random_database(&q, 40, 20);
        let b = Workload::new(2).random_database(&q, 40, 20);
        let same = a.num_tuples() == b.num_tuples()
            && a.all_tuples().all(|t| {
                b.all_tuples().any(|u| {
                    a.values_of(t) == b.values_of(u) && a.relation_of(t) == b.relation_of(u)
                })
            });
        assert!(!same, "two different seeds produced identical databases");
    }

    #[test]
    fn random_database_respects_domain_and_arity() {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let db = Workload::new(3).random_database(&q, 25, 8);
        for t in db.all_tuples() {
            for c in db.values_of(t) {
                assert!(c.value() < 8);
            }
        }
        let a = db.schema().relation_id("A").unwrap();
        assert!(db.tuples_of(a).len() <= 25);
    }

    #[test]
    fn query_variants_are_shape_isomorphic_and_deterministic() {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)")
            .unwrap()
            .with_name("q_ACconf");
        let a = Workload::new(11).query_variants(&q, 8);
        let b = Workload::new(11).query_variants(&q, 8);
        assert_eq!(a, b, "variants must be deterministic per seed");
        let key = cq::canonicalize(&q).key;
        for v in &a {
            assert!(cq::shape_isomorphic(&q, v));
            assert_eq!(cq::canonicalize(v).key, key);
            assert_eq!(v.name(), q.name());
            assert_eq!(v.num_atoms(), q.num_atoms());
        }
        // The stream actually varies: not every variant shares one atom order.
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "eight variants should not all be identical"
        );
    }

    #[test]
    fn query_variants_preserve_exogenous_flags() {
        let q = parse_query("A(x), R(x,y)").unwrap().with_exogenous(&[0]);
        for v in Workload::new(5).query_variants(&q, 6) {
            let exo: Vec<&str> = v
                .atoms()
                .iter()
                .filter(|a| a.exogenous)
                .map(|a| v.schema().name(a.relation))
                .collect();
            assert_eq!(exo, vec!["A"]);
        }
    }

    #[test]
    fn graph_relation_density_bounds() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = Workload::new(11).random_graph_relation(&q, "R", 10, 0.3);
        assert!(db.num_tuples() <= 100);
        let empty = Workload::new(11).random_graph_relation(&q, "R", 10, 0.0);
        assert_eq!(empty.num_tuples(), 0);
        let full = Workload::new(11).random_graph_relation(&q, "R", 5, 1.0);
        assert_eq!(full.num_tuples(), 25);
    }

    #[test]
    fn saturate_unary_relations_adds_all_values() {
        let q = parse_query("A(x), R(x,y), R(y,x), B(y)").unwrap();
        let mut db = Workload::new(5).random_graph_relation(&q, "R", 6, 0.4);
        Workload::new(5).saturate_unary_relations(&q, &mut db, 6);
        let a = db.schema().relation_id("A").unwrap();
        let b = db.schema().relation_id("B").unwrap();
        assert_eq!(db.tuples_of(a).len(), 6);
        assert_eq!(db.tuples_of(b).len(), 6);
    }

    #[test]
    fn symmetric_relation_produces_pairs() {
        let q = parse_query("R(x,y), R(y,x)").unwrap();
        let db = Workload::new(9).random_symmetric_relation(&q, "R", 8, 30, 1.0);
        let r = db.schema().relation_id("R").unwrap();
        for &t in db.tuples_of(r) {
            let v = db.values_of(t);
            assert!(db.contains(r, &[v[1], v[0]]), "missing inverse of {v:?}");
        }
    }

    #[test]
    fn deletion_sequence_is_distinct_endogenous_and_reproducible() {
        let q = parse_query("A(x), R^x(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        for v in 0..8u64 {
            db.insert_named("A", &[v]);
            db.insert_named("R", &[v, v + 1]);
        }
        let seq = Workload::new(21).random_deletion_sequence(&q, &db, 5);
        assert_eq!(seq.len(), 5);
        let mut dedup = seq.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5, "tuples must be distinct");
        let a = db.schema().relation_id("A").unwrap();
        for &t in &seq {
            assert_eq!(db.relation_of(t), a, "R is exogenous, only A deletable");
        }
        assert_eq!(seq, Workload::new(21).random_deletion_sequence(&q, &db, 5));
        // Requesting more than available clamps.
        assert_eq!(
            Workload::new(3).random_deletion_sequence(&q, &db, 99).len(),
            8
        );
    }

    #[test]
    fn random_3cnf_shape() {
        let f = Workload::new(13).random_3cnf(6, 10);
        assert_eq!(f.num_clauses(), 10);
        assert!(f.is_3cnf());
        for clause in &f.clauses {
            let mut vars: Vec<usize> = clause.iter().map(|l| l.var).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3, "clause variables must be distinct");
        }
    }

    #[test]
    fn stream_spec_replays_identically_and_is_duplicate_free() {
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let spec = StreamSpec::for_query(&q, 42, 500, 7, 16);
        let a: Vec<_> = spec.stream().collect();
        let b: Vec<_> = spec.stream().collect();
        assert_eq!(a.len(), spec.len());
        assert_eq!(a, b, "two passes must replay the identical sequence");
        let mut seen: Vec<(u32, Vec<u64>)> = a
            .iter()
            .map(|t| (t.rel().0, t.values().iter().map(|c| c.0).collect()))
            .collect();
        seen.sort();
        let before = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), before, "stream must be duplicate-free");
        // Dup-freeness makes stream positions whole-instance tuple ids.
        assert_eq!(spec.materialize().num_tuples(), a.len());
    }

    #[test]
    fn stream_spec_plants_disjoint_groups_with_zipf_relation_sizes() {
        let q = parse_query("R(x,y), S(y,z), T(z,w)").unwrap();
        let spec = StreamSpec::for_query(&q, 9, 600, 4, 32);
        let group_of_constant = |c: u64| c / 32;
        let mut per_rel = vec![0usize; 3];
        for t in spec.stream() {
            let g = group_of_constant(t.values()[0].0);
            for c in t.values() {
                assert_eq!(group_of_constant(c.0), g, "tuple spans two groups");
            }
            per_rel[t.rel().index()] += 1;
        }
        assert!(
            per_rel[0] > per_rel[1] && per_rel[1] > per_rel[2],
            "Zipf skew should order relation sizes: {per_rel:?}"
        );
        // Planted groups really are separate connected components.
        let frozen = spec.materialize().freeze();
        let plan = database::shard::partition(&frozen, 4);
        assert!(plan.components >= 4, "expected >= 4 components");
    }

    #[test]
    fn stream_spec_clamps_unary_relations_to_the_domain() {
        let q = parse_query("A(x), R(x,y)").unwrap();
        let spec = StreamSpec::for_query(&q, 1, 1000, 2, 8);
        let mut unary = 0usize;
        for t in spec.stream() {
            if t.values().len() == 1 {
                unary += 1;
            }
        }
        assert!(
            unary <= 2 * 8,
            "at most width distinct unary tuples per group"
        );
        assert_eq!(spec.stream().count(), spec.len());
    }

    #[test]
    fn random_undirected_graph_shape() {
        let g = Workload::new(17).random_undirected_graph(12, 0.25);
        assert_eq!(g.num_vertices(), 12);
        assert!(g.num_edges() <= 12 * 11 / 2);
        let empty = Workload::new(17).random_undirected_graph(5, 0.0);
        assert_eq!(empty.num_edges(), 0);
    }
}
