//! The readiness-polled event loop at the front of `resd`.
//!
//! One I/O thread owns every client socket in nonblocking mode and
//! multiplexes them through a tiny FFI shim over the platform readiness
//! API — `epoll(7)` on Linux, `poll(2)` elsewhere — kept std-only like the
//! rest of the crate (no mio, no async runtime). An idle keep-alive
//! connection costs one registered fd and a small `Conn` struct; a
//! slow-loris writer trickles bytes into a bounded per-connection read
//! buffer; neither ever pins a worker thread, which is the property the
//! old thread-per-connection pool could not offer. Both the wait and the
//! loop's own bookkeeping are **O(ready)**, not O(registered): the kernel
//! reports only signalled fds, and each pass revisits only the
//! connections something actually happened to (an event, a completion, an
//! accept) — thousands of parked connections charge the hot path nothing.
//!
//! Data flow:
//!
//! ```text
//!   epoll/poll ──readable──▶ read → frame split → frames queue ─┐ (≤1 in
//!                                                               │  flight per
//!   workers ◀─── bounded job channel ◀── dispatch ◀─────────────┘  conn)
//!      │
//!      └─▶ completion queue + self-pipe byte ──▶ wait wakes ──▶ write buf
//!                                                            ──▶ socket
//! ```
//!
//! * **Framing** happens here: complete newline-terminated request lines
//!   are split off the read buffer; a line over `max_line_bytes` gets a
//!   structured `bad_request` and the connection is closed after earlier
//!   frames finish (matching the old loop's refuse-and-close).
//! * **Pipelining**: a client may write many frames without reading.
//!   Frames queue per connection (up to `pipeline_depth`; past that the
//!   loop simply stops reading the socket, so TCP backpressure reaches the
//!   client) and are *executed serially per connection* — at most one job
//!   in flight — so responses are written in arrival order and session
//!   mutations keep the deterministic order a sequential client observes.
//!   Distinct connections execute concurrently across the worker pool,
//!   exactly as before.
//! * **Admission control** moved from connect time to dispatch time: the
//!   job channel is bounded by `queue_depth`, and a frame that finds it
//!   full is answered `overloaded` (with `retry_after_ms`) immediately —
//!   idle connections no longer occupy queue slots, only runnable work
//!   does.
//! * **Wakeups**: workers push finished responses onto a shared completion
//!   queue and write one byte into the self-pipe (a loopback socket pair —
//!   no `pipe(2)` FFI needed), which the poller watches like any other fd.
//!   The loop drains completions, appends to the owning connection's write
//!   buffer and flushes as far as the socket allows; what remains waits for
//!   write readiness. A peer that stops reading accumulates a write buffer
//!   only up to `max_write_buf_bytes` and is then dropped.
//! * **Housekeeping**: each pass also re-checks the shutdown flag/file and
//!   (about once a second) reaps sessions idle past the TTL.
//!
//! Graceful shutdown: on the `shutdown` verb (flag set by the worker that
//! served it) or the signal file, the loop stops accepting and dispatching,
//! flushes every in-flight response — bounded by a drain grace period —
//! and returns; dropping the job sender then winds down the workers.

use crate::{proto, RequestLimits, ServerState};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Read-side interest (new frames wanted).
const WANT_READ: u8 = 0b01;
/// Write-side interest (flush blocked on the socket).
const WANT_WRITE: u8 = 0b10;

/// One readiness report from [`Poller::wait`]. `read` folds in
/// hangup/error conditions (the read path discovers EOF/reset exactly as
/// the old loop did); `bad` means the fd itself was invalid (poll(2)
/// backend only — epoll cannot report it).
struct Event {
    token: u64,
    read: bool,
    write: bool,
    bad: bool,
}

/// Linux backend: `epoll(7)`. The wait is O(ready) in both kernel and
/// userspace — registered-but-silent fds are never touched, which is what
/// lets thousands of idle connections ride along for free.
#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::ffi::c_int;
    use std::io;
    use std::os::unix::io::RawFd;

    // The kernel ABI packs epoll_event on x86-64 (and only there).
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    pub(super) struct Poller {
        epfd: c_int,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&mut self, op: c_int, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_to_events(interest),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn add(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub(super) fn modify(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub(super) fn remove(&mut self, fd: RawFd) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        pub(super) fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let n = loop {
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            for ev in &self.buf[..n] {
                // Copy packed fields out by value (no references into a
                // packed struct).
                let events = { ev.events };
                let token = { ev.data };
                out.push(Event {
                    token,
                    read: events & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                    write: events & EPOLLOUT != 0,
                    bad: false,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }

    fn interest_to_events(interest: u8) -> u32 {
        let mut events = 0u32;
        if interest & super::WANT_READ != 0 {
            events |= EPOLLIN;
        }
        if interest & super::WANT_WRITE != 0 {
            events |= EPOLLOUT;
        }
        // interest == 0 still reports EPOLLERR/EPOLLHUP (level-triggered),
        // which is exactly the "watch for death, charge no read interest"
        // registration the loop uses for capped pipelines.
        events
    }
}

/// Portable fallback backend: `poll(2)`. Registration state lives in a
/// map and every wait rebuilds the pollfd array — O(registered) per wait,
/// which is fine for the platforms that land here.
#[cfg(not(target_os = "linux"))]
mod sys {
    use super::Event;
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    extern "C" {
        /// `poll(2)`. `nfds_t` is `unsigned long` on every libc this
        /// crate builds against (the workspace is Unix-only at the socket
        /// layer already via `AsRawFd`).
        fn poll(
            fds: *mut PollFd,
            nfds: std::ffi::c_ulong,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }

    pub(super) struct Poller {
        fds: HashMap<RawFd, (u64, u8)>,
        buf: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: HashMap::new(),
                buf: Vec::new(),
                tokens: Vec::new(),
            })
        }

        pub(super) fn add(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            self.fds.insert(fd, (token, interest));
            Ok(())
        }

        pub(super) fn modify(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            self.fds.insert(fd, (token, interest));
            Ok(())
        }

        pub(super) fn remove(&mut self, fd: RawFd) {
            self.fds.remove(&fd);
        }

        pub(super) fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            self.buf.clear();
            self.tokens.clear();
            for (&fd, &(token, interest)) in self.fds.iter() {
                let mut events = 0i16;
                if interest & super::WANT_READ != 0 {
                    events |= POLLIN;
                }
                if interest & super::WANT_WRITE != 0 {
                    events |= POLLOUT;
                }
                self.buf.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
                self.tokens.push(token);
            }
            loop {
                let rc = unsafe {
                    poll(
                        self.buf.as_mut_ptr(),
                        self.buf.len() as std::ffi::c_ulong,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            }
            for (row, pfd) in self.buf.iter().enumerate() {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token: self.tokens[row],
                    read: pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    write: pfd.revents & POLLOUT != 0,
                    bad: pfd.revents & POLLNVAL != 0,
                });
            }
            Ok(())
        }
    }
}

use sys::Poller;

/// Poller token of the self-pipe read end.
const TOK_WAKEUP: u64 = u64::MAX;
/// Poller token of the listener.
const TOK_LISTENER: u64 = u64::MAX - 1;

/// The self-pipe: a connected loopback TCP pair (write end for workers,
/// read end polled by the loop). A socket pair avoids a second FFI surface
/// for `pipe(2)`; the accept is verified against the connecting end's
/// address so a stray local connect cannot hijack the channel.
pub(crate) fn wakeup_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let expected = tx.local_addr()?;
    for _ in 0..16 {
        let (rx, peer) = listener.accept()?;
        if peer == expected {
            tx.set_nonblocking(true)?;
            tx.set_nodelay(true)?;
            rx.set_nonblocking(true)?;
            return Ok((tx, rx));
        }
    }
    Err(io::Error::other("could not establish wakeup channel"))
}

/// One framed request handed to the worker pool.
pub(crate) struct Job {
    pub(crate) conn: u64,
    pub(crate) seq: u64,
    pub(crate) line: String,
}

/// One finished response on its way back to the loop.
pub(crate) struct Completion {
    pub(crate) conn: u64,
    pub(crate) seq: u64,
    pub(crate) response: String,
}

/// The worker → event-loop return path: a locked queue plus the self-pipe
/// write end that turns a push into a poller wakeup.
pub(crate) struct CompletionQueue {
    done: Mutex<Vec<Completion>>,
    wakeup: TcpStream,
}

impl CompletionQueue {
    pub(crate) fn new(wakeup: TcpStream) -> CompletionQueue {
        CompletionQueue {
            done: Mutex::new(Vec::new()),
            wakeup,
        }
    }

    pub(crate) fn push(&self, completion: Completion) {
        self.done
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(completion);
        // A full pipe already guarantees a pending wakeup; WouldBlock (and
        // any other failure — the loop also drains on its wait timeout) is
        // deliberately ignored.
        let _ = (&self.wakeup).write(&[1u8]);
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.done.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Event-loop tuning, split off [`crate::ServerConfig`] by
/// [`crate::Server::run`].
pub(crate) struct LoopConfig {
    pub(crate) pipeline_depth: usize,
    pub(crate) max_conns: usize,
    pub(crate) max_write_buf_bytes: usize,
    pub(crate) retry_after_ms: u64,
    pub(crate) session_ttl: Option<Duration>,
    pub(crate) shutdown_file: Option<PathBuf>,
}

/// Per-connection state: bounded buffers, queued frames, and the serial
/// execution latch.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed. Bounded by `max_line_bytes` (plus
    /// one read chunk of slack).
    read_buf: Vec<u8>,
    /// Where the newline scan left off — keeps a slow-loris client O(1)
    /// per byte instead of rescanning the buffer each poll round.
    scan_from: usize,
    /// Complete frames waiting for dispatch (the pipelining queue).
    frames: VecDeque<String>,
    /// Responses not yet accepted by the socket; `write_from` marks the
    /// flushed prefix.
    write_buf: Vec<u8>,
    write_from: usize,
    /// Sequence number of the next frame to dispatch (a guard against
    /// stale completions; execution is serial per connection).
    next_seq: u64,
    /// Whether a job of this connection is in the channel or on a worker.
    executing: bool,
    /// Peer sent EOF (half-close): finish queued work, flush, then drop.
    read_closed: bool,
    /// Fatal framing error to answer once queued frames finish, then close
    /// (the old loop's refuse-and-close for oversized lines).
    fatal: Option<String>,
    /// All work answered and flushed — close once `write_buf` empties.
    close_after_flush: bool,
    /// Interest currently registered with the poller (`None` = not
    /// registered). Kept in sync by `sync_interest`.
    registered: Option<u8>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            scan_from: 0,
            frames: VecDeque::new(),
            write_buf: Vec::new(),
            write_from: 0,
            next_seq: 0,
            executing: false,
            read_closed: false,
            fatal: None,
            close_after_flush: false,
            registered: None,
        }
    }

    fn pending_write(&self) -> bool {
        self.write_from < self.write_buf.len()
    }

    fn queue_response(&mut self, response: &str) {
        self.write_buf.reserve(response.len() + 1);
        self.write_buf.extend_from_slice(response.as_bytes());
        self.write_buf.push(b'\n');
    }

    /// Flushes as much of the write buffer as the socket accepts without
    /// blocking. Returns `false` when the connection is dead.
    fn flush(&mut self) -> bool {
        while self.pending_write() {
            match self.stream.write(&self.write_buf[self.write_from..]) {
                Ok(0) => return false,
                Ok(n) => self.write_from += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if !self.pending_write() {
            self.write_buf.clear();
            self.write_from = 0;
        } else if self.write_from > (1 << 16) {
            self.write_buf.drain(..self.write_from);
            self.write_from = 0;
        }
        true
    }

    /// The poller interest this connection's state calls for. Reading
    /// stops at the pipeline cap (TCP backpressure tells the client),
    /// after EOF, and once the connection is doomed. `Some(0)` keeps the
    /// fd registered for error/hangup detection only; `None` takes it out
    /// entirely — a half-closed connection whose request is still on a
    /// worker would otherwise re-signal hangup every pass and spin the
    /// loop, and there is nothing to do for it until its completion lands.
    fn desired_interest(&self, draining: bool, pipeline_depth: usize) -> Option<u8> {
        let mut interest = 0u8;
        if !self.read_closed
            && self.fatal.is_none()
            && !self.close_after_flush
            && !draining
            && self.frames.len() < pipeline_depth
        {
            interest |= WANT_READ;
        }
        if self.pending_write() {
            interest |= WANT_WRITE;
        }
        if interest == 0 && self.read_closed {
            None
        } else {
            Some(interest)
        }
    }
}

/// Reconciles a connection's poller registration with its current state.
fn sync_interest(poller: &mut Poller, id: u64, conn: &mut Conn, draining: bool, depth: usize) {
    let want = conn.desired_interest(draining, depth);
    let fd = conn.stream.as_raw_fd();
    match (conn.registered, want) {
        (None, Some(interest)) if poller.add(fd, id, interest).is_ok() => {
            conn.registered = Some(interest);
        }
        (Some(_), None) => {
            poller.remove(fd);
            conn.registered = None;
        }
        (Some(old), Some(interest))
            if old != interest && poller.modify(fd, id, interest).is_ok() =>
        {
            conn.registered = Some(interest);
        }
        _ => {}
    }
}

/// Runs the event loop until shutdown. Owns the listener, the wakeup read
/// end and the job sender; returning drops the sender, which winds down
/// the worker pool.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    listener: TcpListener,
    state: &ServerState,
    shutdown: &AtomicBool,
    job_tx: mpsc::SyncSender<Job>,
    completions: &CompletionQueue,
    wakeup_rx: TcpStream,
    cfg: LoopConfig,
    limits: RequestLimits,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    poller.add(wakeup_rx.as_raw_fd(), TOK_WAKEUP, WANT_READ)?;
    poller.add(listener.as_raw_fd(), TOK_LISTENER, WANT_READ)?;
    let mut listener_armed = true;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 0;
    // Connections something happened to since their state was last
    // serviced: an event, a completion, an accept. Only these are
    // revisited each pass — everything else is O(ready), not O(conns).
    let mut touched: Vec<u64> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut last_reap = Instant::now();
    let mut draining_since: Option<Instant> = None;
    let overloaded = format!(
        "{{\"ok\": false, \"kind\": \"overloaded\", \"error\": \"server worker queue is full\", \"retry_after_ms\": {}}}",
        cfg.retry_after_ms
    );

    loop {
        if shutdown.load(Ordering::SeqCst) {
            if draining_since.is_none() {
                draining_since = Some(Instant::now());
            }
        } else if let Some(path) = &cfg.shutdown_file {
            if path.exists() {
                shutdown.store(true, Ordering::SeqCst);
            }
        }
        let draining = draining_since.is_some();

        // 1. Land finished responses on their connections' write buffers.
        for done in completions.drain() {
            let conn = match conns.get_mut(&done.conn) {
                Some(conn) => conn,
                // The connection died while its request ran; drop the
                // response (the conn-id space is monotone, never reused).
                None => continue,
            };
            debug_assert_eq!(done.seq + 1, conn.next_seq);
            let _ = done.seq;
            conn.executing = false;
            conn.queue_response(&done.response);
            touched.push(done.conn);
        }

        // 2. Service every touched connection: dispatch queued frames
        //    (serial per connection keeps responses in arrival order),
        //    surface deferred framing errors, flush, kill the dead, and
        //    re-sync poller interest. While draining, every pass services
        //    all connections instead — read interest must drop everywhere
        //    and the exit condition scans them anyway.
        if draining {
            touched.clear();
            touched.extend(conns.keys().copied());
        }
        for &id in &touched {
            let conn = match conns.get_mut(&id) {
                Some(conn) => conn,
                None => continue, // killed earlier this pass (duplicate id)
            };
            if !draining {
                while !conn.executing {
                    let line = match conn.frames.pop_front() {
                        Some(line) => line,
                        None => break,
                    };
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    match job_tx.try_send(Job {
                        conn: id,
                        seq,
                        line,
                    }) {
                        Ok(()) => conn.executing = true,
                        Err(mpsc::TrySendError::Full(_)) => {
                            // Admission control: answer `overloaded` in
                            // order (no earlier response of this conn can
                            // still be in flight — execution is serial and
                            // the latch is clear).
                            conn.queue_response(&overloaded);
                            proto::record_error(state, &overloaded);
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            shutdown.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                }
                // All input answered: surface a deferred framing error,
                // then arrange the close once the bytes are out.
                if !conn.executing && conn.frames.is_empty() {
                    if let Some(fatal) = conn.fatal.take() {
                        proto::record_error(state, &fatal);
                        conn.queue_response(&fatal);
                        conn.close_after_flush = true;
                    } else if conn.read_closed && !conn.close_after_flush {
                        conn.close_after_flush = true;
                    }
                }
            }
            if !conn.flush()
                || (conn.close_after_flush
                    && !conn.pending_write()
                    && !conn.executing
                    && conn.frames.is_empty())
                || conn.write_buf.len() - conn.write_from > cfg.max_write_buf_bytes
            {
                if conn.registered.is_some() {
                    poller.remove(conn.stream.as_raw_fd());
                }
                conns.remove(&id);
                continue;
            }
            sync_interest(&mut poller, id, conn, draining, cfg.pipeline_depth);
        }
        touched.clear();

        if draining {
            let all_flushed = conns
                .values()
                .all(|c| !c.executing && !c.pending_write() && c.frames.is_empty());
            let grace_over = draining_since
                .map(|t| t.elapsed() > Duration::from_secs(5))
                .unwrap_or(false);
            if all_flushed || grace_over {
                return Ok(());
            }
        }

        // 3. Housekeeping: reap idle sessions about once a second.
        if let Some(ttl) = cfg.session_ttl {
            let cadence = Duration::from_millis(1000)
                .min(ttl / 2)
                .max(Duration::from_millis(50));
            if last_reap.elapsed() >= cadence {
                state.tenancy.reap_expired(ttl);
                last_reap = Instant::now();
            }
        }

        // 4. Arm or disarm the accept path (full or draining = disarm).
        let accepting = !draining && conns.len() < cfg.max_conns;
        if accepting != listener_armed {
            let interest = if accepting { WANT_READ } else { 0 };
            if poller
                .modify(listener.as_raw_fd(), TOK_LISTENER, interest)
                .is_ok()
            {
                listener_armed = accepting;
            }
        }

        poller.wait(100, &mut events)?;

        // 5. React to readiness: drain the self-pipe, accept, and do
        //    socket I/O for every signalled connection. State follow-up
        //    (dispatch, close bookkeeping, interest sync) happens at the
        //    top of the next pass via `touched`.
        for ev in &events {
            match ev.token {
                TOK_WAKEUP => {
                    // Swallow the wakeup bytes (completions land at the
                    // top of the next pass).
                    let mut sink = [0u8; 4096];
                    while let Ok(n) = (&wakeup_rx).read(&mut sink) {
                        if n == 0 || n < sink.len() {
                            break;
                        }
                    }
                }
                TOK_LISTENER => {
                    if !accepting {
                        continue;
                    }
                    loop {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let _ = stream.set_nodelay(true);
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                let id = next_conn;
                                next_conn += 1;
                                let mut conn = Conn::new(stream);
                                sync_interest(
                                    &mut poller,
                                    id,
                                    &mut conn,
                                    draining,
                                    cfg.pipeline_depth,
                                );
                                conns.insert(id, conn);
                                if conns.len() >= cfg.max_conns {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => break,
                        }
                    }
                }
                id => {
                    let conn = match conns.get_mut(&id) {
                        Some(conn) => conn,
                        None => continue,
                    };
                    let mut alive = !ev.bad;
                    if alive && ev.read && !conn.read_closed {
                        alive = read_frames(conn, limits);
                    }
                    if alive && ev.write {
                        alive = conn.flush();
                    }
                    if alive {
                        touched.push(id);
                    } else {
                        if conn.registered.is_some() {
                            poller.remove(conn.stream.as_raw_fd());
                        }
                        conns.remove(&id);
                    }
                }
            }
        }
    }
}

/// Reads everything the socket holds (bounded per pass for fairness) and
/// splits complete frames off the buffer. Returns `false` when the
/// connection is dead.
fn read_frames(conn: &mut Conn, limits: RequestLimits) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    let mut taken = 0usize;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                taken += n;
                // Level-triggered readiness re-signals leftovers next
                // pass, so capping one connection's share of a pass is
                // free fairness.
                if n < chunk.len() || taken >= 256 * 1024 {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    // Frame split: scan only the unscanned suffix.
    let mut start = 0usize;
    let mut scan = conn.scan_from.max(start);
    while let Some(offset) = conn.read_buf[scan..].iter().position(|&b| b == b'\n') {
        let end = scan + offset + 1;
        // Mirror the old loop's budget: a complete line longer than
        // `max_line_bytes` (newline included) is refused and the
        // connection closed — trusting the rest of a stream that blew the
        // framing budget invites the client to do it again.
        if end - start > limits.max_line_bytes {
            // Frames already split off stay queued: they were complete,
            // in-budget requests and are answered in order before the
            // refusal goes out (the old loop served them the same way).
            conn.fatal = Some(oversized(limits.max_line_bytes));
            conn.read_closed = true;
            break;
        }
        let line = String::from_utf8_lossy(&conn.read_buf[start..end]);
        if !line.trim().is_empty() {
            conn.frames.push_back(line.into_owned());
        }
        start = end;
        scan = end;
    }
    if conn.fatal.is_none() {
        // A partial line may keep growing — but never past the budget.
        if conn.read_buf.len() - start > limits.max_line_bytes {
            conn.fatal = Some(oversized(limits.max_line_bytes));
            conn.read_closed = true;
        }
    }
    if start > 0 {
        conn.read_buf.drain(..start);
    }
    conn.scan_from = conn.read_buf.len();
    true
}

fn oversized(max_line_bytes: usize) -> String {
    format!(
        "{{\"ok\": false, \"kind\": \"bad_request\", \"error\": \"request line exceeds {} bytes\"}}",
        max_line_bytes
    )
}
