//! Test-only fault injection (compiled only with the `faults` feature).
//!
//! Two halves:
//!
//! * **Server-side directives** — [`apply_request_faults`] runs inside the
//!   per-request `catch_unwind` in `proto::handle_request` and honours
//!   request-level fields: `"fault": "panic"` panics on the worker thread
//!   (exercising exactly the recovery path a real solver bug would take),
//!   `"fault_sleep_ms": N` stalls the handler (capped at 5 s), and
//!   `"fault": "expire_deadline"` is consumed by `parse_options`, which
//!   attaches an already-cancelled [`CancelToken`](resilience_core::CancelToken)
//!   so the solve observes cancellation at its first check.
//! * **Client-side drivers** — small raw-socket helpers the chaos suite
//!   uses to misbehave at the framing layer: stalled half-written frames,
//!   mid-request disconnects, truncated garbage.
//!
//! The feature must never be enabled in a production build; `resd` is
//! compiled without it and rejects the `fault` fields as unknown input only
//! insofar as they are simply ignored (requests remain well-formed JSON).

use crate::jsonio::JsonValue;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Honours request-level fault directives; called inside the dispatch
/// `catch_unwind`. See the module docs for the recognised fields.
pub(crate) fn apply_request_faults(req: &JsonValue) {
    if req.get("fault").and_then(JsonValue::as_str) == Some("panic") {
        panic!("injected fault: forced request panic");
    }
    if let Some(ms) = req.get("fault_sleep_ms").and_then(JsonValue::as_f64) {
        let ms = (ms.max(0.0) as u64).min(5_000);
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Connects and writes `partial` **without** a trailing newline, returning
/// the still-open stream: a stalled client holding a half-written frame.
/// The worker serving it sits in its read-timeout loop accumulating the
/// partial line until the caller drops the stream (or finishes the line).
pub fn stalled_client(addr: &str, partial: &[u8]) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(partial)?;
    stream.flush()?;
    Ok(stream)
}

/// Writes a partial frame and immediately drops the connection — a client
/// dying mid-request. The server must treat the EOF as end-of-connection,
/// not as a request.
pub fn disconnect_mid_request(addr: &str, partial: &[u8]) -> std::io::Result<()> {
    let stream = stalled_client(addr, partial)?;
    drop(stream);
    Ok(())
}

/// Sends one complete (newline-terminated) frame of arbitrary bytes and
/// reads back a single response line. Used to feed the server truncated or
/// garbage frames that *are* properly newline-framed.
pub fn send_raw_line(addr: &str, frame: &[u8]) -> std::io::Result<String> {
    use std::io::{BufRead, BufReader};
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(frame)?;
    if !frame.ends_with(b"\n") {
        stream.write_all(b"\n")?;
    }
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line.trim_end().to_string())
}
