//! The request/response protocol of `resd`: verb dispatch over the
//! tenant-aware registry. All rendering goes through [`crate::jsonio`] so
//! responses are byte-identical to what the local `rescli --json` paths
//! print. Connection I/O (framing, pipelining, backpressure) lives in
//! [`crate::eventloop`]; this module sees one request line at a time and
//! produces exactly one response line.

use crate::dbtext;
use crate::jsonio::{self, JsonValue};
use crate::tenancy::{LookupError, QuotaError};
use crate::{DbEntry, QueryEntry, RequestLimits, ServerState, SessionEntry};
use cq::parse_query;
use resilience_core::engine::{SolveError, SolveOptions, SolveScratch};
use resilience_core::CancelToken;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// What the caller should do after a request.
pub(crate) enum Action {
    Continue,
    Shutdown,
}

fn err_json(kind: &str, msg: &str) -> String {
    format!(
        "{{\"ok\": false, \"kind\": \"{}\", \"error\": \"{}\"}}",
        jsonio::json_escape(kind),
        jsonio::json_escape(msg)
    )
}

fn solve_err_json(e: &SolveError) -> String {
    match e {
        SolveError::BudgetExhausted { .. } => err_json("budget_exhausted", &e.to_string()),
        SolveError::SchemaMismatch { .. } => err_json("schema_mismatch", &e.to_string()),
        SolveError::Cancelled { partial } => {
            // A cancelled solve still reports the anytime bounds the search
            // had established, so a client on a deadline gets an interval,
            // not nothing.
            let bounds = match partial {
                Some(b) => format!(
                    "{{\"lower\": {}, \"upper\": {}, \"nodes_explored\": {}}}",
                    b.lower,
                    b.upper
                        .map_or_else(|| "null".to_string(), |u| u.to_string()),
                    b.nodes_explored
                ),
                None => "null".to_string(),
            };
            format!(
                "{{\"ok\": false, \"kind\": \"cancelled\", \"error\": \"{}\", \"bounds\": {bounds}}}",
                jsonio::json_escape(&e.to_string())
            )
        }
    }
}

fn bad(msg: &str) -> String {
    err_json("bad_request", msg)
}

/// Renders a failed handle lookup: `unknown_handle` when nobody has the
/// id, `unauthorized` when another tenant does — the registry never serves
/// (or confirms details of) someone else's entries beyond that.
fn lookup_err(e: LookupError, what: &str, id: &str) -> String {
    match e {
        LookupError::Unknown => err_json("unknown_handle", &format!("unknown {what} {id}")),
        LookupError::Foreign => err_json(
            "unauthorized",
            &format!("{what} {id} belongs to another tenant"),
        ),
    }
}

/// Renders a quota refusal, naming the offending limit and its configured
/// maximum as structured fields next to the message.
fn quota_err(q: &QuotaError, what: &str) -> String {
    format!(
        "{{\"ok\": false, \"kind\": \"quota_exceeded\", \"error\": \"{}\", \"limit\": \"{}\", \"max\": {}}}",
        jsonio::json_escape(&format!("{what} would exceed {} = {}", q.limit, q.max)),
        q.limit,
        q.max,
    )
}

/// Decodes [`SolveOptions`] from an optional `options` object. A
/// client-supplied `timeout_ms` becomes a deadline-bearing [`CancelToken`],
/// silently capped at the server's `max_timeout_ms`.
fn parse_options(req: &JsonValue, limits: RequestLimits) -> Result<SolveOptions, String> {
    let mut opts = SolveOptions::new();
    if let Some(obj) = req.get("options") {
        let fields = match obj {
            JsonValue::Obj(fields) => fields.as_slice(),
            JsonValue::Null => &[],
            _ => return Err("options must be an object".to_string()),
        };
        for (key, value) in fields {
            match key.as_str() {
                "node_budget" => {
                    let n = value
                        .as_usize()
                        .ok_or("node_budget must be a non-negative integer")?;
                    opts = opts.node_budget(n);
                }
                "want_contingency" => {
                    opts = opts.want_contingency(value.as_bool().ok_or("want_contingency: bool")?);
                }
                "enumeration_threads" => {
                    let n = value
                        .as_usize()
                        .ok_or("enumeration_threads must be a non-negative integer")?;
                    opts = opts.enumeration_threads(n);
                }
                "warm_start" => {
                    opts = opts.warm_start(value.as_bool().ok_or("warm_start: bool")?);
                }
                "adaptive_plan" => {
                    opts = opts.adaptive_plan(value.as_bool().ok_or("adaptive_plan: bool")?);
                }
                "timeout_ms" => {
                    let ms = value
                        .as_usize()
                        .ok_or("timeout_ms must be a non-negative integer")?
                        as u64;
                    let ms = ms.min(limits.max_timeout_ms);
                    opts = opts.cancel_token(CancelToken::with_deadline(Duration::from_millis(ms)));
                }
                other => return Err(format!("unknown option {other}")),
            }
        }
    }
    #[cfg(feature = "faults")]
    if req.get("fault").and_then(JsonValue::as_str) == Some("expire_deadline") {
        // An already-expired deadline: the solve observes cancellation at
        // its first check, whatever timeout the request asked for.
        let token = CancelToken::new();
        token.cancel();
        opts = opts.cancel_token(token);
    }
    Ok(opts)
}

fn req_str<'a>(req: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    req.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string field {key}"))
}

fn get_query(state: &ServerState, auth: &str, id: &str) -> Result<Arc<QueryEntry>, String> {
    state
        .tenancy
        .lookup_query(auth, id)
        .map_err(|e| lookup_err(e, "query_id", id))
}

fn get_db(state: &ServerState, auth: &str, id: &str) -> Result<Arc<DbEntry>, String> {
    state
        .tenancy
        .lookup_db(auth, id)
        .map_err(|e| lookup_err(e, "db_id", id))
}

/// Resolves the session a request addresses — by routing `token` (any
/// connection, owning tenant's `auth` only) or by `session_id` in the
/// caller's namespace — and locks it for the duration of the request.
/// Serial execution per connection plus this lock make concurrent access
/// from different connections safe (they serialize in lock order).
fn get_session(
    state: &ServerState,
    auth: &str,
    req: &JsonValue,
) -> Result<Arc<Mutex<SessionEntry>>, String> {
    let token = req.get("token").and_then(JsonValue::as_str);
    let sid = req.get("session_id").and_then(JsonValue::as_str);
    if token.is_none() && sid.is_none() {
        return Err(bad("missing string field session_id"));
    }
    state
        .tenancy
        .resolve_session(auth, sid, token)
        .map_err(|e| match (token, e) {
            (Some(_), LookupError::Unknown) => err_json("unknown_handle", "unknown session token"),
            (Some(_), LookupError::Foreign) => {
                err_json("unauthorized", "session token belongs to another tenant")
            }
            (None, e) => lookup_err(e, "session_id", sid.unwrap_or_default()),
        })
}

fn lock_entry(slot: &Mutex<SessionEntry>) -> MutexGuard<'_, SessionEntry> {
    // Poisoning is recovered: a panicking request already answered
    // `internal`, and the session's maps/counters are never left in a
    // state that violates their own invariants mid-method.
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

/// Every verb the protocol answers. Requests naming anything else count
/// under the fixed `unknown` stats bucket, so a hostile client cannot grow
/// the per-verb map with arbitrary strings.
const KNOWN_VERBS: &[&str] = &[
    "ping",
    "compile",
    "load",
    "freeze",
    "unload",
    "solve",
    "batch",
    "session",
    "delete",
    "restore",
    "reset",
    "resolve",
    "batch_whatif",
    "close",
    "stats",
    "shutdown",
];

/// Counts one request under its verb. Called *before* dispatch so the
/// `stats` verb's own request is part of the counts it renders.
fn record_verb(state: &ServerState, verb: &str) {
    let mut stats = state.stats.lock().unwrap_or_else(|e| e.into_inner());
    *stats.requests_by_verb.entry(verb.to_string()).or_insert(0) += 1;
}

/// Counts one error response under its `kind`. Sniffs the rendered line —
/// every error path goes through [`err_json`], so the prefix and the `kind`
/// field are reliable — which keeps the accounting at the single point all
/// responses flow through instead of inside each handler. Also used by the
/// event loop for the responses it synthesizes itself (`overloaded`,
/// oversized-frame `bad_request`).
pub(crate) fn record_error(state: &ServerState, response: &str) {
    if !response.starts_with("{\"ok\": false") {
        return;
    }
    let kind = jsonio::extract_raw(response, "kind")
        .map(|raw| raw.trim_matches('"').to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let mut stats = state.stats.lock().unwrap_or_else(|e| e.into_inner());
    *stats.errors_by_kind.entry(kind).or_insert(0) += 1;
}

/// Dispatches one request line. Always produces exactly one response line —
/// even when the handler panics: the dispatch runs under `catch_unwind`, a
/// panic answers `internal` and the worker keeps serving (with fresh
/// scratch, since the panicking solve may have left it mid-update).
pub(crate) fn handle_request(
    state: &ServerState,
    scratch: &mut SolveScratch,
    line: &str,
    limits: RequestLimits,
) -> (String, Action) {
    let req = match jsonio::parse_json(line.trim()) {
        Ok(v) => v,
        Err(e) => {
            // Resource-limit refusals (depth, string size) are well-formed
            // requests the server declines, not parse failures.
            let kind = if e.starts_with("limit:") {
                "bad_request"
            } else {
                "parse"
            };
            let response = err_json(kind, &e);
            record_verb(state, "invalid");
            record_error(state, &response);
            return (response, Action::Continue);
        }
    };
    let op = match req.get("op").and_then(JsonValue::as_str) {
        Some(op) => op.to_string(),
        None => {
            let response = bad("missing string field op");
            record_verb(state, "invalid");
            record_error(state, &response);
            return (response, Action::Continue);
        }
    };
    record_verb(
        state,
        if KNOWN_VERBS.contains(&op.as_str()) {
            &op
        } else {
            "unknown"
        },
    );
    if op == "shutdown" {
        return (
            "{\"ok\": true, \"shutting_down\": true}".to_string(),
            Action::Shutdown,
        );
    }
    // The tenant this request operates as: its `auth` token, or the shared
    // anonymous namespace when absent.
    let auth = req
        .get("auth")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();
    let dispatched = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "faults")]
        crate::faults::apply_request_faults(&req);
        match op.as_str() {
            "ping" => Ok("{\"ok\": true, \"pong\": true}".to_string()),
            "compile" => op_compile(state, &auth, &req),
            "load" | "freeze" => op_load(state, &auth, &req),
            "unload" => op_unload(state, &auth, &req),
            "solve" => op_solve(state, &auth, scratch, &req, limits),
            "batch" => op_batch(state, &auth, &req, limits),
            "session" => op_session(state, &auth, &req, limits),
            "delete" | "restore" => op_mutate(state, &auth, &req, op == "delete"),
            "reset" => op_reset(state, &auth, &req),
            "resolve" => op_resolve(state, &auth, &req, limits),
            "batch_whatif" => op_batch_whatif(state, &auth, &req, limits),
            "close" => op_close(state, &auth, &req),
            "stats" => Ok(op_stats(state)),
            other => Err(bad(&format!("unknown op {other}"))),
        }
    }));
    let response = match dispatched {
        Ok(response) => response,
        Err(_) => {
            *scratch = SolveScratch::new();
            Err(err_json(
                "internal",
                "request handler panicked; worker recovered",
            ))
        }
    };
    let response = response.unwrap_or_else(|e| e);
    record_error(state, &response);
    (response, Action::Continue)
}

fn op_compile(state: &ServerState, auth: &str, req: &JsonValue) -> Result<String, String> {
    let text = req_str(req, "query").map_err(|e| bad(&e))?;
    let query = parse_query(text).map_err(|e| bad(&format!("could not parse query: {e}")))?;
    let cached = state.plan_cache.compile(&query);
    let compiled = cached.compiled;
    // Register the cache's representative query, not the submitted text:
    // instance uploads and fact references resolve through the entry's
    // schema, which must be the one the shared plan was compiled against.
    // Relation names and arities are part of the cached shape, so they are
    // identical to the submitted query's either way.
    let query = compiled.query().clone();
    let complexity = compiled.classification().complexity.to_string();
    let display = query.to_string();
    let tenant = state.tenancy.tenant(auth);
    let id = state.tenancy.insert_query(
        &tenant,
        req.get("id").and_then(JsonValue::as_str),
        QueryEntry {
            query,
            compiled,
            lru: AtomicU64::new(0),
        },
    );
    Ok(format!(
        "{{\"ok\": true, \"query_id\": \"{}\", \"query\": \"{}\", \"complexity\": \"{}\"}}",
        jsonio::json_escape(&id),
        jsonio::json_escape(&display),
        jsonio::json_escape(&complexity),
    ))
}

/// Renders the `stats` response: uptime, per-verb request counts, per-kind
/// error counts, the plan-cache counters and the tenancy counters, through
/// the shared [`jsonio::stats_json`] renderer (so a remote client
/// re-emitting the `stats` object is byte-identical to the in-process
/// view). Infallible — a stats request never errors.
fn op_stats(state: &ServerState) -> String {
    let uptime_ms = state.started.elapsed().as_millis() as u64;
    let (requests, errors, warm) = {
        let stats = state.stats.lock().unwrap_or_else(|e| e.into_inner());
        (
            stats.requests_by_verb.clone(),
            stats.errors_by_kind.clone(),
            stats.warm,
        )
    };
    let cache = state.plan_cache.stats();
    let tenancy = state.tenancy.stats_snapshot();
    format!(
        "{{\"ok\": true, \"stats\": {}}}",
        jsonio::stats_json(uptime_ms, &requests, &errors, &cache, &warm, &tenancy)
    )
}

fn op_load(state: &ServerState, auth: &str, req: &JsonValue) -> Result<String, String> {
    let query = get_query(state, auth, req_str(req, "query_id").map_err(|e| bad(&e))?)?;
    // Three sources, in precedence order: a columnar snapshot file (opened
    // in O(sections), mmap-backed where the platform allows), inline text,
    // or a text file path.
    let (frozen, labels, mapped) =
        if let Some(path) = req.get("snapshot").and_then(JsonValue::as_str) {
            let snap = database::snapshot::load(Path::new(path), &Default::default())
                .map_err(|e| err_json("snapshot", &format!("{e} ({})", e.kind())))?;
            // The engine resolves query relations in the store by name, so a
            // snapshot only needs to *cover* the query's schema — shard
            // snapshots carry the full instance schema even when loaded for a
            // single-component scatter query.
            let covered = query.query.schema().relation_ids().all(|rel| {
                let name = query.query.schema().name(rel);
                snap.db
                    .schema()
                    .relation_id(name)
                    .is_some_and(|s| snap.db.schema().arity(s) == query.query.schema().arity(rel))
            });
            if !covered {
                return Err(err_json(
                    "schema_mismatch",
                    &format!("snapshot {path} was written for a different schema"),
                ));
            }
            (snap.db, snap.labels, snap.mapped)
        } else {
            let text = match req.get("text").and_then(JsonValue::as_str) {
                Some(text) => text.to_string(),
                None => {
                    let path = req
                        .get("path")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| bad("load needs text, path or snapshot"))?;
                    std::fs::read_to_string(path)
                        .map_err(|e| err_json("io", &format!("cannot read {path}: {e}")))?
                }
            };
            let (db, labels) = dbtext::parse_database_with_labels(&query.query, &text)
                .map_err(|e| err_json("parse", &e))?;
            (db.freeze(), labels, false)
        };
    let frozen = Arc::new(frozen);
    let tuples = frozen.num_tuples();
    // mmap-backed entries are charged like heap ones: the mapping occupies
    // the tenant's share of page cache and address space either way.
    let bytes = frozen.resident_bytes() + dbtext::labels_bytes(&labels);
    let tenant = state.tenancy.tenant(auth);
    let id = state
        .tenancy
        .insert_db(
            &tenant,
            req.get("id").and_then(JsonValue::as_str),
            DbEntry {
                id: String::new(),
                frozen,
                labels,
                bytes,
                lru: AtomicU64::new(0),
            },
        )
        .map_err(|q| quota_err(&q, "loading this instance"))?;
    Ok(format!(
        "{{\"ok\": true, \"db_id\": \"{}\", \"tuples\": {tuples}, \"mapped\": {mapped}}}",
        jsonio::json_escape(&id),
    ))
}

/// Evicts registry entries, bounding a long-lived daemon's memory: every
/// `load` pins an instance until someone unloads it (or the tenant's quota
/// evicts it). Open sessions hold their own `Arc`s, so unloading while a
/// session is live is safe — the data is freed when the last session over
/// it closes.
fn op_unload(state: &ServerState, auth: &str, req: &JsonValue) -> Result<String, String> {
    let qid = req.get("query_id").and_then(JsonValue::as_str);
    let did = req.get("db_id").and_then(JsonValue::as_str);
    if qid.is_none() && did.is_none() {
        return Err(bad("unload needs query_id and/or db_id"));
    }
    let unloaded = state.tenancy.unload(auth, qid, did).map_err(|(e, what)| {
        // `what` is "query_id <id>" / "db_id <id>" — split for the shared
        // renderer so messages match the lookup paths byte-for-byte.
        match what.split_once(' ') {
            Some((kind, id)) => lookup_err(e, kind, id),
            None => lookup_err(e, "handle", &what),
        }
    })?;
    let rendered: Vec<String> = unloaded
        .iter()
        .map(|id| format!("\"{}\"", jsonio::json_escape(id)))
        .collect();
    Ok(format!(
        "{{\"ok\": true, \"unloaded\": [{}]}}",
        rendered.join(", ")
    ))
}

fn op_solve(
    state: &ServerState,
    auth: &str,
    scratch: &mut SolveScratch,
    req: &JsonValue,
    limits: RequestLimits,
) -> Result<String, String> {
    let query = get_query(state, auth, req_str(req, "query_id").map_err(|e| bad(&e))?)?;
    let db = get_db(state, auth, req_str(req, "db_id").map_err(|e| bad(&e))?)?;
    let opts = parse_options(req, limits).map_err(|e| bad(&e))?;
    let tag = req
        .get("tag")
        .and_then(JsonValue::as_str)
        .unwrap_or(&db.id)
        .to_string();
    let report = query
        .compiled
        .solve_with_scratch(&db.frozen, &opts, scratch)
        .map_err(|e| solve_err_json(&e))?;
    Ok(format!(
        "{{\"ok\": true, \"result\": {}}}",
        jsonio::report_json(&tag, db.frozen.as_ref(), &report)
    ))
}

fn op_batch(
    state: &ServerState,
    auth: &str,
    req: &JsonValue,
    limits: RequestLimits,
) -> Result<String, String> {
    let query = get_query(state, auth, req_str(req, "query_id").map_err(|e| bad(&e))?)?;
    let ids = req
        .get("db_ids")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad("missing array field db_ids"))?;
    let opts = parse_options(req, limits).map_err(|e| bad(&e))?;
    let tags: Vec<Option<String>> = match req.get("tags").and_then(JsonValue::as_array) {
        Some(tags) if tags.len() == ids.len() => tags
            .iter()
            .map(|t| t.as_str().map(str::to_string))
            .collect(),
        Some(_) => return Err(bad("tags must match db_ids in length")),
        None => vec![None; ids.len()],
    };
    let mut entries = Vec::with_capacity(ids.len());
    for id in ids {
        let id = id.as_str().ok_or_else(|| bad("db_ids must be strings"))?;
        entries.push(get_db(state, auth, id)?);
    }
    let frozen: Vec<Arc<database::FrozenDb>> =
        entries.iter().map(|e| Arc::clone(&e.frozen)).collect();
    let reports = query.compiled.solve_batch(&frozen, &opts);
    let rows: Vec<String> = entries
        .iter()
        .zip(&tags)
        .zip(&reports)
        .map(|((entry, tag), report)| {
            let tag = tag.as_deref().unwrap_or(&entry.id);
            match report {
                Ok(report) => jsonio::report_json(tag, entry.frozen.as_ref(), report),
                Err(e) => format!(
                    "{{\"file\": \"{}\", \"error\": \"{}\"}}",
                    jsonio::json_escape(tag),
                    jsonio::json_escape(&e.to_string())
                ),
            }
        })
        .collect();
    Ok(format!(
        "{{\"ok\": true, \"results\": [{}]}}",
        rows.join(", ")
    ))
}

fn op_session(
    state: &ServerState,
    auth: &str,
    req: &JsonValue,
    limits: RequestLimits,
) -> Result<String, String> {
    let query = get_query(state, auth, req_str(req, "query_id").map_err(|e| bad(&e))?)?;
    let db = get_db(state, auth, req_str(req, "db_id").map_err(|e| bad(&e))?)?;
    let opts = parse_options(req, limits).map_err(|e| bad(&e))?;
    let session = query
        .compiled
        .session_shared(&db.frozen, &opts)
        .map_err(|e| solve_err_json(&e))?;
    let tuples = db.frozen.num_tuples();
    let witnesses = session.total_witnesses();
    let query_display = query.query.to_string();
    let complexity = query.compiled.classification().complexity.to_string();
    let tenant = state.tenancy.tenant(auth);
    let (id, token) = state
        .tenancy
        .open_session(
            auth,
            &tenant,
            req.get("session_id").and_then(JsonValue::as_str),
            SessionEntry { session, query, db },
        )
        .map_err(|q| quota_err(&q, "opening this session"))?;
    Ok(format!(
        "{{\"ok\": true, \"session_id\": \"{}\", \"token\": \"{}\", \"query\": \"{}\", \
         \"complexity\": \"{}\", \"tuples\": {}, \"witnesses\": {}}}",
        jsonio::json_escape(&id),
        jsonio::json_escape(&token),
        jsonio::json_escape(&query_display),
        jsonio::json_escape(&complexity),
        tuples,
        witnesses,
    ))
}

fn op_mutate(
    state: &ServerState,
    auth: &str,
    req: &JsonValue,
    is_delete: bool,
) -> Result<String, String> {
    let fact = req_str(req, "tuple").map_err(|e| bad(&e))?.to_string();
    let slot = get_session(state, auth, req)?;
    let mut entry = lock_entry(&slot);
    let verb = if is_delete { "delete" } else { "restore" };
    let t = dbtext::lookup_fact(
        &entry.query.query,
        &entry.db.labels,
        entry.db.frozen.as_ref(),
        &fact,
    )
    .map_err(|e| bad(&format!("{verb}: {e}")))?;
    let changed = if is_delete {
        entry.session.delete(&[t])
    } else {
        entry.session.restore(&[t])
    };
    let rendered = jsonio::render_tuple(entry.db.frozen.as_ref(), t);
    let event = jsonio::mutation_event_json(
        verb,
        &rendered,
        changed,
        entry.session.live_witnesses(),
        entry.session.deleted_count(),
    );
    // Echo the full deletion state, sorted ascending by tuple id
    // (guaranteed by `deleted_tuples`), so clients can checkpoint/replay
    // deterministically.
    let deleted: Vec<String> =
        jsonio::render_contingency(entry.db.frozen.as_ref(), &entry.session.deleted_tuples())
            .into_iter()
            .map(|t| format!("\"{}\"", jsonio::json_escape(&t)))
            .collect();
    Ok(format!(
        "{{\"ok\": true, \"event\": {event}, \"deleted\": [{}]}}",
        deleted.join(", ")
    ))
}

fn op_reset(state: &ServerState, auth: &str, req: &JsonValue) -> Result<String, String> {
    let slot = get_session(state, auth, req)?;
    let mut entry = lock_entry(&slot);
    entry.session.reset();
    Ok(format!(
        "{{\"ok\": true, \"event\": {}}}",
        jsonio::reset_event_json(entry.session.live_witnesses())
    ))
}

fn op_resolve(
    state: &ServerState,
    auth: &str,
    req: &JsonValue,
    limits: RequestLimits,
) -> Result<String, String> {
    let opts = parse_options(req, limits).map_err(|e| bad(&e))?;
    let slot = get_session(state, auth, req)?;
    let mut entry = lock_entry(&slot);
    let report = entry.session.solve(&opts).map_err(|e| solve_err_json(&e))?;
    let stats = entry.session.last_solve_stats();
    {
        let mut agg = state.stats.lock().unwrap_or_else(|e| e.into_inner());
        agg.warm.record(&stats);
    }
    Ok(format!(
        "{{\"ok\": true, \"event\": {}}}",
        jsonio::solve_event_json(entry.db.frozen.as_ref(), &report, &stats)
    ))
}

fn op_batch_whatif(
    state: &ServerState,
    auth: &str,
    req: &JsonValue,
    limits: RequestLimits,
) -> Result<String, String> {
    let opts = parse_options(req, limits).map_err(|e| bad(&e))?;
    let sets_json = req
        .get("sets")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad("missing array field sets"))?
        .to_vec();
    let slot = get_session(state, auth, req)?;
    let mut entry = lock_entry(&slot);
    // `solve_whatif_batch` is read-only on the session; restart its idle
    // clock explicitly so a client doing only what-ifs is not reaped.
    entry.session.touch();
    let mut sets = Vec::with_capacity(sets_json.len());
    for (i, set) in sets_json.iter().enumerate() {
        let facts = set
            .as_array()
            .ok_or_else(|| bad(&format!("sets[{i}] must be an array of fact strings")))?;
        let mut ids = Vec::with_capacity(facts.len());
        for fact in facts {
            let fact = fact
                .as_str()
                .ok_or_else(|| bad(&format!("sets[{i}] must contain fact strings")))?;
            let t = dbtext::lookup_fact(
                &entry.query.query,
                &entry.db.labels,
                entry.db.frozen.as_ref(),
                fact,
            )
            .map_err(|e| bad(&format!("sets[{i}]: {e}")))?;
            ids.push(t);
        }
        sets.push(ids);
    }
    let reports = entry.session.solve_whatif_batch(&sets, &opts);
    let rows: Vec<String> = reports
        .iter()
        .map(|report| match report {
            Ok(report) => format!(
                "{{{}}}",
                jsonio::report_body(entry.db.frozen.as_ref(), report)
            ),
            Err(e) => format!("{{\"error\": \"{}\"}}", jsonio::json_escape(&e.to_string())),
        })
        .collect();
    Ok(format!(
        "{{\"ok\": true, \"results\": [{}]}}",
        rows.join(", ")
    ))
}

fn op_close(state: &ServerState, auth: &str, req: &JsonValue) -> Result<String, String> {
    let id = req_str(req, "session_id").map_err(|e| bad(&e))?;
    state
        .tenancy
        .close_session(auth, id)
        .map_err(|e| lookup_err(e, "session_id", id))?;
    Ok(format!(
        "{{\"ok\": true, \"closed\": \"{}\"}}",
        jsonio::json_escape(id)
    ))
}
