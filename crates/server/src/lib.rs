//! `resd` — a concurrent resilience service daemon over the compiled engine.
//!
//! The ROADMAP's north star is a production-scale system serving heavy
//! traffic; `Engine::compile` + `CompiledQuery::solve_batch` are its natural
//! RPC surface. This crate wraps them in a long-lived, multi-threaded TCP
//! daemon speaking a **newline-delimited JSON** protocol over `std::net` —
//! std-only by construction (the build environment has no network access for
//! dependencies; see `vendor/README.md`).
//!
//! # Protocol
//!
//! One request object per line, one response object per line, in order.
//! Every response carries `"ok": true` or
//! `"ok": false, "kind": ..., "error": ...`.
//!
//! | verb | request fields | response fields |
//! |---|---|---|
//! | `ping` | — | `pong` |
//! | `compile` | `query`, \[`id`\] | `query_id`, `query`, `complexity` |
//! | `load` / `freeze` | `query_id`, `text` \| `path`, \[`id`\] | `db_id`, `tuples` |
//! | `unload` | `query_id` and/or `db_id` | `unloaded` (evicts registry entries; open sessions keep their `Arc`s) |
//! | `solve` | `query_id`, `db_id`, \[`tag`\], \[`options`\] | `result` (report object) |
//! | `batch` | `query_id`, `db_ids`, \[`tags`\], \[`options`\] | `results` (report/error rows) |
//! | `session` | `query_id`, `db_id`, \[`session_id`\], \[`options`\] | `session_id`, `query`, `complexity`, `tuples`, `witnesses` |
//! | `delete` / `restore` | `session_id`, `tuple` | `event`, `deleted` (sorted) |
//! | `reset` | `session_id` | `event` |
//! | `resolve` | `session_id`, \[`options`\] | `event` (solve event with `solver` stats) |
//! | `batch_whatif` | `session_id`, `sets`, \[`options`\] | `results` (report/error rows) |
//! | `close` | `session_id` | `closed` |
//! | `stats` | — | `stats` (uptime, requests by verb, errors by kind, plan-cache counters) |
//! | `shutdown` | — | `shutting_down` |
//!
//! Databases upload as the same `Rel(c1,...)` text format `rescli` reads
//! (inline `text` or a server-local `path`); tuples in requests and
//! responses are fact texts resolved through the uploaded instance's label
//! map, so a remote client sees exactly the ids a local run sees. `options`
//! mirrors [`SolveOptions`](resilience_core::engine::SolveOptions):
//! `node_budget`, `want_contingency`,
//! `enumeration_threads`, `warm_start`, `adaptive_plan`.
//!
//! # Architecture
//!
//! An accept loop feeds accepted connections to a **fixed worker pool** of
//! scoped threads over an mpsc channel. Compiled queries and frozen
//! databases live in an `Arc`-shared registry behind an `RwLock` — handles
//! are cloned out under a brief read lock, never held across a solve. Each
//! worker reuses one [`SolveScratch`] across every request it serves.
//! `compile` consults a shared [`PlanCache`]: queries that are the same
//! *shape* (identical up to variable renaming and atom reordering — see
//! [`cq::canonicalize`]) share one classification + plan, so a fleet of
//! clients submitting millions of trivially-renamed queries compiles each
//! shape once. A cache hit registers the cache's first-seen representative
//! query, whose relation names and arities are identical to the submitted
//! text by construction (they are part of the shape), so instance uploads
//! and fact references resolve exactly as they would against a fresh
//! compile; the `query` echoed by `compile` is the representative's
//! rendering. The `stats` verb reports hit/miss/collision/eviction/bypass
//! counters next to per-verb request and per-kind error counts.
//! Named what-if sessions ([`SharedSolveSession`] — `Arc`-owning, so no
//! borrows into the registry) are **per-connection** state; warm starts and
//! [`SessionSolveStats`](resilience_core::engine::SessionSolveStats) work
//! exactly as they do locally. Graceful shutdown: the `shutdown` verb or
//! the appearance of a configured signal file stops the accept loop,
//! workers drain their current connection (read timeouts re-check the
//! flag), and `run` returns.

pub mod client;
pub mod dbtext;
#[cfg(feature = "faults")]
pub mod faults;
pub mod jsonio;
mod proto;

use resilience_core::engine::{CompiledQuery, SharedSolveSession, SolveScratch};
use resilience_core::plancache::PlanCache;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use database::FrozenDb;

/// Configuration of a daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878` (port 0 picks a free port —
    /// read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Fixed worker-pool size. 0 means one worker per available hardware
    /// thread.
    pub workers: usize,
    /// Optional signal file: the daemon shuts down gracefully as soon as
    /// this path exists (checked by the accept loop).
    pub shutdown_file: Option<PathBuf>,
    /// Admission-control depth of the connection queue. When every worker
    /// is busy and this many connections already wait, new connections are
    /// refused immediately with a structured `overloaded` error (carrying
    /// `retry_after_ms`) instead of queuing without bound. 0 means twice
    /// the worker count.
    pub queue_depth: usize,
    /// Upper cap on client-supplied `timeout_ms` per-request deadlines:
    /// larger requests are clamped, so no client can disable the deadline
    /// machinery by asking for an absurd budget.
    pub max_timeout_ms: u64,
    /// Maximum accepted request-line length in bytes; longer frames get a
    /// structured `bad_request` error and the connection is closed.
    pub max_line_bytes: usize,
    /// The `retry_after_ms` hint sent with `overloaded` refusals.
    pub retry_after_ms: u64,
    /// Capacity of the shared compiled-plan cache consulted by `compile`:
    /// how many distinct query *shapes* (canonical forms up to variable
    /// renaming and atom reordering) keep their classification + plan
    /// resident. Clamped to at least 1.
    pub plan_cache_capacity: usize,
}

impl ServerConfig {
    /// Config with the default worker count (one per hardware thread), no
    /// signal file and the default robustness limits: queue depth 2×workers,
    /// per-request deadlines capped at 30 s, 1 MiB request lines, 50 ms
    /// overload retry hint.
    pub fn new(addr: impl Into<String>) -> Self {
        ServerConfig {
            addr: addr.into(),
            workers: 0,
            shutdown_file: None,
            queue_depth: 0,
            max_timeout_ms: 30_000,
            max_line_bytes: 1 << 20,
            retry_after_ms: 50,
            plan_cache_capacity: resilience_core::plancache::DEFAULT_CAPACITY,
        }
    }

    /// Sets the worker-pool size (0 = one per hardware thread).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the shutdown signal file.
    pub fn shutdown_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.shutdown_file = Some(path.into());
        self
    }

    /// Sets the admission-control queue depth (0 = twice the workers).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the cap on client-supplied `timeout_ms` deadlines.
    pub fn max_timeout_ms(mut self, ms: u64) -> Self {
        self.max_timeout_ms = ms;
        self
    }

    /// Sets the maximum accepted request-line length in bytes.
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes;
        self
    }

    /// Sets the compiled-plan cache capacity (distinct query shapes).
    pub fn plan_cache_capacity(mut self, shapes: usize) -> Self {
        self.plan_cache_capacity = shapes;
        self
    }
}

/// Per-request robustness limits, derived from [`ServerConfig`] and shared
/// by every worker.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RequestLimits {
    pub(crate) max_timeout_ms: u64,
    pub(crate) max_line_bytes: usize,
}

/// A compiled query registered with the daemon.
pub(crate) struct QueryEntry {
    pub(crate) query: cq::Query,
    pub(crate) compiled: Arc<CompiledQuery>,
}

/// A frozen instance registered with the daemon, plus the label resolution
/// of the text it was parsed from (so fact references in later requests
/// resolve identically to the upload).
pub(crate) struct DbEntry {
    pub(crate) id: String,
    pub(crate) frozen: Arc<FrozenDb>,
    pub(crate) labels: HashMap<String, u64>,
}

/// The shared, append-mostly registry of compiled queries and frozen
/// instances. Entries are `Arc`s: lookups clone a handle under a brief read
/// lock and solve outside it.
#[derive(Default)]
pub(crate) struct Registry {
    pub(crate) queries: HashMap<String, Arc<QueryEntry>>,
    pub(crate) dbs: HashMap<String, Arc<DbEntry>>,
    next_query: u64,
    next_db: u64,
}

impl Registry {
    /// Next unused auto-generated query id. Skips ids a client registered
    /// explicitly — an auto id must never silently replace someone else's
    /// entry.
    pub(crate) fn next_query_id(&mut self) -> String {
        loop {
            let id = format!("q{}", self.next_query);
            self.next_query += 1;
            if !self.queries.contains_key(&id) {
                return id;
            }
        }
    }

    /// Next unused auto-generated database id (same skip rule as
    /// [`Registry::next_query_id`]).
    pub(crate) fn next_db_id(&mut self) -> String {
        loop {
            let id = format!("d{}", self.next_db);
            self.next_db += 1;
            if !self.dbs.contains_key(&id) {
                return id;
            }
        }
    }
}

/// Mutable service counters, updated at the dispatch point of every
/// request. `BTreeMap`s keep the rendered `stats` object deterministic.
#[derive(Default)]
pub(crate) struct StatsInner {
    /// Requests by verb. Unparseable lines count as `invalid`, well-formed
    /// requests naming a verb the protocol does not have as `unknown` —
    /// fixed buckets, so hostile input cannot grow the map without bound.
    pub(crate) requests_by_verb: BTreeMap<String, u64>,
    /// Error responses by their `kind` field (`bad_request`, `parse`,
    /// `unknown_handle`, `cancelled`, ...).
    pub(crate) errors_by_kind: BTreeMap<String, u64>,
    /// Aggregate warm-start counters over every session `resolve` served.
    pub(crate) warm: jsonio::WarmAggregate,
}

/// Everything the worker pool shares: the handle registry, the compiled-plan
/// cache consulted by `compile`, and the service counters behind the `stats`
/// verb.
pub(crate) struct ServerState {
    pub(crate) registry: RwLock<Registry>,
    pub(crate) plan_cache: PlanCache,
    pub(crate) stats: Mutex<StatsInner>,
    pub(crate) started: Instant,
}

impl ServerState {
    pub(crate) fn new(plan_cache_capacity: usize) -> ServerState {
        ServerState {
            registry: RwLock::new(Registry::default()),
            plan_cache: PlanCache::new(plan_cache_capacity),
            stats: Mutex::new(StatsInner::default()),
            started: Instant::now(),
        }
    }
}

/// One named session of a connection: the `Arc`-owning session plus the
/// registry handles its facts resolve through.
pub(crate) struct SessionEntry {
    pub(crate) session: SharedSolveSession,
    pub(crate) query: Arc<QueryEntry>,
    pub(crate) db: Arc<DbEntry>,
}

/// Per-connection protocol state.
#[derive(Default)]
pub(crate) struct ConnState {
    pub(crate) sessions: HashMap<String, SessionEntry>,
    next_session: u64,
}

impl ConnState {
    /// Next unused auto-generated session id (skips explicitly named
    /// sessions, like [`Registry::next_query_id`]).
    pub(crate) fn next_session_id(&mut self) -> String {
        loop {
            let id = format!("s{}", self.next_session);
            self.next_session += 1;
            if !self.sessions.contains_key(&id) {
                return id;
            }
        }
    }
}

/// A bound (not yet running) daemon. `bind` + `run` are split so callers —
/// tests, `perfbench serve`, `rescli serve` — can learn the actual address
/// before the accept loop starts.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener. The accept loop does not start until
    /// [`Server::run`].
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(ServerState::new(config.plan_cache_capacity));
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            state,
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] return: set it to `true` from
    /// any thread (the in-process equivalent of the `shutdown` verb).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the daemon: accept loop + fixed worker pool, until the
    /// `shutdown` verb arrives, the signal file appears, or the shutdown
    /// flag is set. Returns after all workers have drained.
    pub fn run(self) -> io::Result<()> {
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.workers
        };
        self.listener.set_nonblocking(true)?;
        let queue_depth = if self.config.queue_depth == 0 {
            workers * 2
        } else {
            self.config.queue_depth
        };
        let limits = RequestLimits {
            max_timeout_ms: self.config.max_timeout_ms,
            max_line_bytes: self.config.max_line_bytes,
        };
        let retry_after_ms = self.config.retry_after_ms;
        // Bounded queue = admission control: when every worker is busy and
        // the backlog is full, `try_send` fails immediately and the client
        // gets a structured `overloaded` refusal instead of queuing without
        // bound behind requests it cannot see.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue_depth);
        let rx = Mutex::new(rx);
        let shutdown = &self.shutdown;
        let state = &self.state;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = &rx;
                scope.spawn(move || worker_loop(rx, state, shutdown, limits));
            }
            loop {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Some(path) = &self.config.shutdown_file {
                    if path.exists() {
                        shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        match tx.try_send(stream) {
                            Ok(()) => {}
                            Err(mpsc::TrySendError::Full(stream)) => {
                                refuse_overloaded(stream, retry_after_ms);
                            }
                            Err(mpsc::TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shutdown.store(true, Ordering::SeqCst);
                        drop(tx);
                        return Err(e);
                    }
                }
            }
            drop(tx);
            Ok(())
        })
    }
}

/// Refuses a connection the worker queue has no room for: one structured
/// `overloaded` line (with a `retry_after_ms` hint), then close. A short
/// write timeout keeps the accept loop responsive even against a client
/// that never reads.
fn refuse_overloaded(stream: TcpStream, retry_after_ms: u64) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    let line = format!(
        "{{\"ok\": false, \"kind\": \"overloaded\", \"error\": \"server worker queue is full\", \"retry_after_ms\": {retry_after_ms}}}\n"
    );
    use std::io::Write as _;
    let _ = stream.write_all(line.as_bytes());
}

/// One pool worker: pull connections off the shared channel, serve each to
/// completion with a worker-lifetime [`SolveScratch`], exit when the accept
/// loop hangs up.
fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    state: &ServerState,
    shutdown: &AtomicBool,
    limits: RequestLimits,
) {
    let mut scratch = SolveScratch::new();
    loop {
        // Take the stream *outside* the lock so one slow connection never
        // serializes the whole pool behind the receiver mutex. A worker
        // that panicked while holding the lock (despite the per-request
        // catch_unwind) must not take the rest of the pool with it, so a
        // poisoned mutex is simply recovered — the receiver holds no
        // invariant beyond its own queue.
        let stream = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            match guard.recv_timeout(Duration::from_millis(100)) {
                Ok(stream) => Some(stream),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        match stream {
            Some(stream) => proto::serve_connection(stream, state, shutdown, &mut scratch, limits),
            None => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Convenience: bind + run in one call (the `resd` binary's body). Prints
/// the listening line to stdout so wrapper scripts can wait for readiness.
pub fn serve(config: ServerConfig) -> io::Result<()> {
    let server = Server::bind(config)?;
    let addr = server.local_addr()?;
    println!("resd listening on {addr}");
    use std::io::Write as _;
    let _ = io::stdout().flush();
    server.run()
}

/// Resolves an address string for clients (first match).
pub fn resolve_addr(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot resolve {addr}"),
        )
    })
}
