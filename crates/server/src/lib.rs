//! `resd` — a concurrent resilience service daemon over the compiled engine.
//!
//! The ROADMAP's north star is a production-scale system serving heavy
//! traffic; `Engine::compile` + `CompiledQuery::solve_batch` are its natural
//! RPC surface. This crate wraps them in a long-lived, multi-threaded TCP
//! daemon speaking a **newline-delimited JSON** protocol over `std::net` —
//! std-only by construction (the build environment has no network access for
//! dependencies; see `vendor/README.md`).
//!
//! # Protocol
//!
//! One request object per line, one response object per line, in order.
//! Every response carries `"ok": true` or
//! `"ok": false, "kind": ..., "error": ...`.
//!
//! | verb | request fields | response fields |
//! |---|---|---|
//! | `ping` | — | `pong` |
//! | `compile` | `query`, \[`id`\] | `query_id`, `query`, `complexity` |
//! | `load` / `freeze` | `query_id`, `text` \| `path`, \[`id`\] | `db_id`, `tuples` |
//! | `unload` | `query_id` and/or `db_id` | `unloaded` (evicts registry entries; open sessions keep their `Arc`s) |
//! | `solve` | `query_id`, `db_id`, \[`tag`\], \[`options`\] | `result` (report object) |
//! | `batch` | `query_id`, `db_ids`, \[`tags`\], \[`options`\] | `results` (report/error rows) |
//! | `session` | `query_id`, `db_id`, \[`session_id`\], \[`options`\] | `session_id`, `token`, `query`, `complexity`, `tuples`, `witnesses` |
//! | `delete` / `restore` | `session_id` \| `token`, `tuple` | `event`, `deleted` (sorted) |
//! | `reset` | `session_id` \| `token` | `event` |
//! | `resolve` | `session_id` \| `token`, \[`options`\] | `event` (solve event with `solver` stats) |
//! | `batch_whatif` | `session_id` \| `token`, `sets`, \[`options`\] | `results` (report/error rows) |
//! | `close` | `session_id` | `closed` |
//! | `stats` | — | `stats` (uptime, requests by verb, errors by kind, plan-cache counters, tenancy counters) |
//! | `shutdown` | — | `shutting_down` |
//!
//! Every request may additionally carry an `auth` token selecting the
//! tenant namespace it operates in (absent = the shared anonymous tenant);
//! see [`tenancy`].
//!
//! Databases upload as the same `Rel(c1,...)` text format `rescli` reads
//! (inline `text` or a server-local `path`); tuples in requests and
//! responses are fact texts resolved through the uploaded instance's label
//! map, so a remote client sees exactly the ids a local run sees. `options`
//! mirrors [`SolveOptions`](resilience_core::engine::SolveOptions):
//! `node_budget`, `want_contingency`,
//! `enumeration_threads`, `warm_start`, `adaptive_plan`.
//!
//! # Architecture
//!
//! A single I/O thread runs a readiness-polled **event loop** (the
//! private `eventloop` module): every client socket is nonblocking and
//! multiplexed through a std-only FFI shim (`epoll` on Linux, `poll(2)`
//! elsewhere), so thousands of idle keep-alive connections cost one fd
//! each and a slow-loris writer trickles into a bounded buffer instead
//! of pinning a thread. Complete request frames are handed to a **fixed
//! worker pool** over a bounded job channel — when it is full the frame is
//! answered with a structured `overloaded` error (carrying
//! `retry_after_ms`) instead of queuing without bound. Clients may
//! **pipeline**: frames queue per connection (up to the configured depth;
//! past it the loop stops reading and TCP backpressure takes over) and
//! execute serially per connection, so responses come back in arrival
//! order while distinct connections run concurrently across the pool.
//!
//! Compiled queries and frozen instances live in per-tenant registries
//! ([`tenancy`]) — namespaces keyed by the request's `auth` token, each
//! bounded by [`TenantQuotas`] (LRU eviction for queries/instances/bytes, a
//! hard `quota_exceeded` for sessions). Handles are cloned out under a
//! brief read lock, never held across a solve. Each worker reuses one
//! [`SolveScratch`] across every request it serves. `compile` consults a
//! shared [`PlanCache`]: queries that are the same *shape* (identical up to
//! variable renaming and atom reordering — see [`cq::canonicalize`]) share
//! one classification + plan, so a fleet of clients submitting millions of
//! trivially-renamed queries compiles each shape once. A cache hit
//! registers the cache's first-seen representative query, whose relation
//! names and arities are identical to the submitted text by construction
//! (they are part of the shape), so instance uploads and fact references
//! resolve exactly as they would against a fresh compile; the `query`
//! echoed by `compile` is the representative's rendering. The `stats` verb
//! reports hit/miss/collision/eviction/bypass counters next to per-verb
//! request, per-kind error and tenancy counts.
//!
//! Named what-if sessions ([`SharedSolveSession`] — `Arc`-owning, so no
//! borrows into the registry) live in their tenant's session table and are
//! reachable from **any** connection: by `session_id` under the same
//! `auth`, or by the opaque `token` the `session` response returns, so a
//! client that reconnects (or a pool of load-balanced connections) keeps
//! its mutation state. Sessions idle past the configured TTL are reaped by
//! the event loop's housekeeping tick. Warm starts and
//! [`SessionSolveStats`](resilience_core::engine::SessionSolveStats) work
//! exactly as they do locally. Graceful shutdown: the `shutdown` verb or
//! the appearance of a configured signal file stops accepting and
//! dispatching, in-flight responses are flushed (bounded by a drain grace
//! period), and `run` returns.

pub mod client;
pub mod dbtext;
mod eventloop;
#[cfg(feature = "faults")]
pub mod faults;
pub mod jsonio;
mod proto;
pub mod scatter;
pub mod tenancy;

use resilience_core::engine::{CompiledQuery, SharedSolveSession, SolveScratch};
use resilience_core::plancache::PlanCache;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use database::FrozenDb;
use std::collections::{BTreeMap, HashMap};
pub use tenancy::TenantQuotas;

/// Configuration of a daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878` (port 0 picks a free port —
    /// read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Fixed worker-pool size. 0 means one worker per available hardware
    /// thread.
    pub workers: usize,
    /// Optional signal file: the daemon shuts down gracefully as soon as
    /// this path exists (checked by the event loop's housekeeping pass).
    pub shutdown_file: Option<PathBuf>,
    /// Admission-control depth of the job channel between the event loop
    /// and the worker pool. When every worker is busy and this many frames
    /// already wait, further frames are answered immediately with a
    /// structured `overloaded` error (carrying `retry_after_ms`) instead
    /// of queuing without bound. 0 means twice the worker count.
    pub queue_depth: usize,
    /// Upper cap on client-supplied `timeout_ms` per-request deadlines:
    /// larger requests are clamped, so no client can disable the deadline
    /// machinery by asking for an absurd budget.
    pub max_timeout_ms: u64,
    /// Maximum accepted request-line length in bytes; longer frames get a
    /// structured `bad_request` error and the connection is closed.
    pub max_line_bytes: usize,
    /// The `retry_after_ms` hint sent with `overloaded` refusals.
    pub retry_after_ms: u64,
    /// Capacity of the shared compiled-plan cache consulted by `compile`:
    /// how many distinct query *shapes* (canonical forms up to variable
    /// renaming and atom reordering) keep their classification + plan
    /// resident. Clamped to at least 1.
    pub plan_cache_capacity: usize,
    /// How many complete request frames one connection may have queued
    /// (including the one executing) before the event loop stops reading
    /// its socket — the pipelining in-flight cap. Clamped to at least 1.
    pub pipeline_depth: usize,
    /// Maximum simultaneously open client connections; past it the
    /// listener is simply not polled until a connection closes.
    pub max_conns: usize,
    /// Bound on a connection's unflushed response bytes: a peer that stops
    /// reading while responses accumulate past this is dropped.
    pub max_write_buf_bytes: usize,
    /// Idle TTL for open sessions in milliseconds: sessions that go this
    /// long without a request are reaped (their ids and tokens answer
    /// `unknown_handle` afterwards). 0 disables reaping.
    pub session_ttl_ms: u64,
    /// Per-tenant quotas (registry entry counts, open sessions, resident
    /// bytes); see [`TenantQuotas`].
    pub quotas: TenantQuotas,
}

impl ServerConfig {
    /// Config with the default worker count (one per hardware thread), no
    /// signal file and the default robustness limits: queue depth 2×workers,
    /// per-request deadlines capped at 30 s, 1 MiB request lines, 50 ms
    /// overload retry hint, pipeline depth 32, 4096 connections, 16 MiB
    /// write buffers, 10 min session TTL and the default [`TenantQuotas`].
    pub fn new(addr: impl Into<String>) -> Self {
        ServerConfig {
            addr: addr.into(),
            workers: 0,
            shutdown_file: None,
            queue_depth: 0,
            max_timeout_ms: 30_000,
            max_line_bytes: 1 << 20,
            retry_after_ms: 50,
            plan_cache_capacity: resilience_core::plancache::DEFAULT_CAPACITY,
            pipeline_depth: 32,
            max_conns: 4096,
            max_write_buf_bytes: 16 << 20,
            session_ttl_ms: 600_000,
            quotas: TenantQuotas::default(),
        }
    }

    /// Sets the worker-pool size (0 = one per hardware thread).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the shutdown signal file.
    pub fn shutdown_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.shutdown_file = Some(path.into());
        self
    }

    /// Sets the admission-control queue depth (0 = twice the workers).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the cap on client-supplied `timeout_ms` deadlines.
    pub fn max_timeout_ms(mut self, ms: u64) -> Self {
        self.max_timeout_ms = ms;
        self
    }

    /// Sets the maximum accepted request-line length in bytes.
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes;
        self
    }

    /// Sets the compiled-plan cache capacity (distinct query shapes).
    pub fn plan_cache_capacity(mut self, shapes: usize) -> Self {
        self.plan_cache_capacity = shapes;
        self
    }

    /// Sets the per-connection pipelining in-flight cap.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Sets the maximum simultaneously open connections.
    pub fn max_conns(mut self, conns: usize) -> Self {
        self.max_conns = conns;
        self
    }

    /// Sets the per-connection unflushed-response byte bound.
    pub fn max_write_buf_bytes(mut self, bytes: usize) -> Self {
        self.max_write_buf_bytes = bytes;
        self
    }

    /// Sets the session idle TTL in milliseconds (0 = never reap).
    pub fn session_ttl_ms(mut self, ms: u64) -> Self {
        self.session_ttl_ms = ms;
        self
    }

    /// Sets the per-tenant quotas.
    pub fn quotas(mut self, quotas: TenantQuotas) -> Self {
        self.quotas = quotas;
        self
    }
}

/// Per-request robustness limits, derived from [`ServerConfig`] and shared
/// by every worker.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RequestLimits {
    pub(crate) max_timeout_ms: u64,
    pub(crate) max_line_bytes: usize,
}

/// A compiled query registered with a tenant. `lru` is the tenancy clock
/// stamp of the last touch (registration or lookup), driving per-tenant
/// LRU eviction.
pub(crate) struct QueryEntry {
    pub(crate) query: cq::Query,
    pub(crate) compiled: Arc<CompiledQuery>,
    pub(crate) lru: AtomicU64,
}

/// A frozen instance registered with a tenant, plus the label resolution
/// of the text it was parsed from (so fact references in later requests
/// resolve identically to the upload) and its resident-byte estimate
/// (CSR arena lengths — see [`FrozenDb::resident_bytes`]).
pub(crate) struct DbEntry {
    pub(crate) id: String,
    pub(crate) frozen: Arc<FrozenDb>,
    pub(crate) labels: HashMap<String, u64>,
    pub(crate) bytes: usize,
    pub(crate) lru: AtomicU64,
}

/// Mutable service counters, updated at the dispatch point of every
/// request. `BTreeMap`s keep the rendered `stats` object deterministic.
#[derive(Default)]
pub(crate) struct StatsInner {
    /// Requests by verb. Unparseable lines count as `invalid`, well-formed
    /// requests naming a verb the protocol does not have as `unknown` —
    /// fixed buckets, so hostile input cannot grow the map without bound.
    pub(crate) requests_by_verb: BTreeMap<String, u64>,
    /// Error responses by their `kind` field (`bad_request`, `parse`,
    /// `unknown_handle`, `cancelled`, ...).
    pub(crate) errors_by_kind: BTreeMap<String, u64>,
    /// Aggregate warm-start counters over every session `resolve` served.
    pub(crate) warm: jsonio::WarmAggregate,
}

/// Everything the worker pool shares: the tenant registries, the
/// compiled-plan cache consulted by `compile`, and the service counters
/// behind the `stats` verb.
pub(crate) struct ServerState {
    pub(crate) tenancy: tenancy::Tenancy,
    pub(crate) plan_cache: PlanCache,
    pub(crate) stats: Mutex<StatsInner>,
    pub(crate) started: Instant,
}

impl ServerState {
    pub(crate) fn new(plan_cache_capacity: usize, quotas: TenantQuotas) -> ServerState {
        ServerState {
            tenancy: tenancy::Tenancy::new(quotas),
            plan_cache: PlanCache::new(plan_cache_capacity),
            stats: Mutex::new(StatsInner::default()),
            started: Instant::now(),
        }
    }
}

/// One named session: the `Arc`-owning session plus the registry handles
/// its facts resolve through. Lives in its tenant's session table behind
/// an `Arc<Mutex<_>>`, so any connection presenting the right credentials
/// reaches the same mutation state.
pub(crate) struct SessionEntry {
    pub(crate) session: SharedSolveSession,
    pub(crate) query: Arc<QueryEntry>,
    pub(crate) db: Arc<DbEntry>,
}

/// A bound (not yet running) daemon. `bind` + `run` are split so callers —
/// tests, `perfbench serve`, `rescli serve` — can learn the actual address
/// before the event loop starts.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener. The event loop does not start until
    /// [`Server::run`].
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(ServerState::new(config.plan_cache_capacity, config.quotas));
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            state,
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] return: set it to `true` from
    /// any thread (the in-process equivalent of the `shutdown` verb).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the daemon: the readiness-polled event loop on this thread
    /// plus a fixed worker pool, until the `shutdown` verb arrives, the
    /// signal file appears, or the shutdown flag is set. Returns after
    /// in-flight responses are flushed and the workers have drained.
    pub fn run(self) -> io::Result<()> {
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.workers
        };
        let queue_depth = if self.config.queue_depth == 0 {
            workers * 2
        } else {
            self.config.queue_depth
        };
        let limits = RequestLimits {
            max_timeout_ms: self.config.max_timeout_ms,
            max_line_bytes: self.config.max_line_bytes,
        };
        let loop_cfg = eventloop::LoopConfig {
            pipeline_depth: self.config.pipeline_depth.max(1),
            max_conns: self.config.max_conns.max(8),
            max_write_buf_bytes: self.config.max_write_buf_bytes.max(1 << 16),
            retry_after_ms: self.config.retry_after_ms,
            session_ttl: (self.config.session_ttl_ms > 0)
                .then(|| Duration::from_millis(self.config.session_ttl_ms)),
            shutdown_file: self.config.shutdown_file.clone(),
        };
        // The self-pipe: workers write a byte after pushing a completion,
        // which wakes `poll` like any other fd.
        let (wakeup_tx, wakeup_rx) = eventloop::wakeup_pair()?;
        let completions = eventloop::CompletionQueue::new(wakeup_tx);
        // Bounded job channel = admission control: when every worker is
        // busy and the backlog is full, `try_send` fails immediately and
        // the frame gets a structured `overloaded` refusal instead of
        // queuing without bound behind requests it cannot see.
        let (job_tx, job_rx) = mpsc::sync_channel::<eventloop::Job>(queue_depth);
        let job_rx = Mutex::new(job_rx);
        let shutdown = &self.shutdown;
        let state = &self.state;
        let completions = &completions;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = &job_rx;
                scope.spawn(move || worker_loop(job_rx, state, shutdown, limits, completions));
            }
            // The event loop owns `job_tx`; returning drops it, the
            // workers see the channel hang up and exit after finishing
            // whatever they are mid-solve on.
            eventloop::run(
                self.listener,
                state,
                shutdown,
                job_tx,
                completions,
                wakeup_rx,
                loop_cfg,
                limits,
            )
        })
    }
}

/// One pool worker: pull framed requests off the shared channel, dispatch
/// each with a worker-lifetime [`SolveScratch`], hand the response back
/// through the completion queue, exit when the event loop hangs up.
fn worker_loop(
    job_rx: &Mutex<mpsc::Receiver<eventloop::Job>>,
    state: &ServerState,
    shutdown: &AtomicBool,
    limits: RequestLimits,
    completions: &eventloop::CompletionQueue,
) {
    let mut scratch = SolveScratch::new();
    loop {
        // Take the job *outside* the lock so one long solve never
        // serializes the whole pool behind the receiver mutex. A worker
        // that panicked while holding the lock (despite the per-request
        // catch_unwind) must not take the rest of the pool with it, so a
        // poisoned mutex is simply recovered — the receiver holds no
        // invariant beyond its own queue.
        let job = {
            let guard = job_rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let job = match job {
            Ok(job) => job,
            // Channel gone: the event loop exited (shutdown or error).
            Err(_) => return,
        };
        let (response, action) = proto::handle_request(state, &mut scratch, &job.line, limits);
        if let proto::Action::Shutdown = action {
            shutdown.store(true, Ordering::SeqCst);
        }
        completions.push(eventloop::Completion {
            conn: job.conn,
            seq: job.seq,
            response,
        });
    }
}

/// Convenience: bind + run in one call (the `resd` binary's body). Prints
/// the listening line to stdout so wrapper scripts can wait for readiness.
pub fn serve(config: ServerConfig) -> io::Result<()> {
    let server = Server::bind(config)?;
    let addr = server.local_addr()?;
    println!("resd listening on {addr}");
    use std::io::Write as _;
    let _ = io::stdout().flush();
    server.run()
}

/// Resolves an address string for clients (first match).
pub fn resolve_addr(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot resolve {addr}"),
        )
    })
}
