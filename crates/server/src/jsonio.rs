//! Hand-rolled JSON: the writer/escaper shared by `rescli` and `resd`, the
//! report/event renderers both front ends must emit **identically**, and a
//! minimal JSON value parser for request decoding.
//!
//! The build environment has no network access (see `vendor/README.md`), so
//! no serde: the protocol is small enough that a few hundred lines of
//! recursive descent cover it. Everything the daemon sends over the wire and
//! everything `rescli --json` prints goes through the renderers here, which
//! is what makes the `tests/server.rs` byte-identity differentials possible.

use database::{TupleId, TupleStore};
use resilience_core::engine::{Resilience, SessionSolveStats, SolveReport};
use resilience_core::plancache::PlanCacheStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one tuple as the canonical fact text `Rel(c1,c2,...)` — the same
/// form the database file format uses, so echoed state can be pasted back
/// into scripts and requests.
pub fn render_tuple<S: TupleStore + ?Sized>(db: &S, t: TupleId) -> String {
    let rel = db.schema().name(db.relation_of(t));
    let vals: Vec<String> = db.values_of(t).iter().map(|c| c.to_string()).collect();
    format!("{rel}({})", vals.join(","))
}

/// Renders a contingency set (or any tuple list) as fact texts, in input
/// order.
pub fn render_contingency<S: TupleStore + ?Sized>(db: &S, gamma: &[TupleId]) -> Vec<String> {
    gamma.iter().map(|&t| render_tuple(db, t)).collect()
}

/// Appends `"resilience": ..., "unfalsifiable": ...` (with leading comma).
fn write_resilience_fields(out: &mut String, resilience: Resilience) {
    match resilience {
        Resilience::Finite(k) => {
            let _ = write!(out, ", \"resilience\": {k}, \"unfalsifiable\": false");
        }
        Resilience::Unfalsifiable => {
            let _ = write!(out, ", \"resilience\": null, \"unfalsifiable\": true");
        }
    }
}

/// Appends `"method": "..."` (with leading comma).
fn write_method_field(out: &mut String, report: &SolveReport) {
    let _ = write!(
        out,
        ", \"method\": \"{}\"",
        json_escape(&format!("{:?}", report.method))
    );
}

/// Appends `"contingency": [...]` or `"contingency": null` (with leading
/// comma).
fn write_contingency_field<S: TupleStore + ?Sized>(out: &mut String, db: &S, report: &SolveReport) {
    if let Some(gamma) = &report.contingency {
        let rendered: Vec<String> = render_contingency(db, gamma)
            .into_iter()
            .map(|t| format!("\"{}\"", json_escape(&t)))
            .collect();
        let _ = write!(out, ", \"contingency\": [{}]", rendered.join(", "));
    } else {
        let _ = write!(out, ", \"contingency\": null");
    }
}

/// The inner fields of a solve report (no surrounding braces, no leading
/// comma): `"tuples": ..., "witnesses": ..., "resilience": ...,
/// "unfalsifiable": ..., "method": ..., "contingency": ...`. Shared by
/// [`report_json`] and the daemon's `batch_whatif` rows.
pub fn report_body<S: TupleStore + ?Sized>(db: &S, report: &SolveReport) -> String {
    let mut out = String::new();
    let _ = write!(out, "\"tuples\": {}", db.num_tuples());
    let _ = write!(out, ", \"witnesses\": {}", report.witnesses);
    write_resilience_fields(&mut out, report.resilience);
    write_method_field(&mut out, report);
    write_contingency_field(&mut out, db, report);
    out
}

/// Renders one solve report as a JSON object (no trailing newline), labelled
/// with `file` — the row format of `rescli solve/batch --json` and of the
/// daemon's `solve`/`batch` results.
pub fn report_json<S: TupleStore + ?Sized>(file: &str, db: &S, report: &SolveReport) -> String {
    format!(
        "{{\"file\": \"{}\", {}}}",
        json_escape(file),
        report_body(db, report)
    )
}

/// The per-step solver statistics object embedded in solve events
/// (`"solver": {...}` in `rescli whatif --json` and `resd` `resolve`
/// responses).
pub fn solver_stats_json(stats: &SessionSolveStats) -> String {
    format!(
        "{{\"warm_start_hit\": {}, \"incumbent_reused\": {}, \"short_circuit\": {}, \
         \"replayed\": {}, \"nodes_explored\": {}, \"flow_warm_reused\": {}, \
         \"flow_paths_repaired\": {}, \"flow_paths_reaugmented\": {}, \
         \"flow_cold_rebuild\": {}, \"reduced_compactions\": {}}}",
        stats.warm_start_hit,
        stats.incumbent_reused,
        stats.short_circuit,
        stats.replayed,
        stats.nodes_explored,
        stats.flow_warm_reused,
        stats.flow_paths_repaired,
        stats.flow_paths_reaugmented,
        stats.flow_cold_rebuild,
        stats.reduced_compactions,
    )
}

/// One session `solve` event object — the format of `rescli whatif --json`
/// solve steps and of the daemon's `resolve` responses.
pub fn solve_event_json<S: TupleStore + ?Sized>(
    db: &S,
    report: &SolveReport,
    stats: &SessionSolveStats,
) -> String {
    let mut obj = String::from("{\"op\": \"solve\"");
    write_resilience_fields(&mut obj, report.resilience);
    let _ = write!(obj, ", \"witnesses\": {}", report.witnesses);
    write_method_field(&mut obj, report);
    let _ = write!(obj, ", \"solver\": {}", solver_stats_json(stats));
    write_contingency_field(&mut obj, db, report);
    obj.push('}');
    obj
}

/// One session `delete`/`restore` event object.
pub fn mutation_event_json(
    verb: &str,
    rendered_tuple: &str,
    witnesses_changed: usize,
    live_witnesses: usize,
    deleted_count: usize,
) -> String {
    format!(
        "{{\"op\": \"{verb}\", \"tuple\": \"{}\", \"witnesses_changed\": {witnesses_changed}, \
         \"live_witnesses\": {live_witnesses}, \"deleted_count\": {deleted_count}}}",
        json_escape(rendered_tuple),
    )
}

/// One session `reset` event object.
pub fn reset_event_json(live_witnesses: usize) -> String {
    format!("{{\"op\": \"reset\", \"live_witnesses\": {live_witnesses}}}")
}

/// The plan-cache counter object embedded in `stats` responses.
pub fn plan_cache_stats_json(stats: &PlanCacheStats) -> String {
    format!(
        "{{\"entries\": {}, \"capacity\": {}, \"hits\": {}, \"misses\": {}, \
         \"collisions\": {}, \"evictions\": {}, \"bypasses\": {}}}",
        stats.entries,
        stats.capacity,
        stats.hits,
        stats.misses,
        stats.collisions,
        stats.evictions,
        stats.bypasses,
    )
}

/// Renders one `BTreeMap` of counters as a JSON object (deterministic key
/// order by construction).
fn counter_map_json(counts: &BTreeMap<String, u64>) -> String {
    let fields: Vec<String> = counts
        .iter()
        .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// Aggregate warm-start counters accumulated over every session `resolve`
/// the daemon served, rendered next to the plan-cache counters in `stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmAggregate {
    /// Solve steps that reused a resident warm flow network.
    pub flow_warm_reuses: u64,
    /// Augmenting paths repaired (rerouted/drained) across all steps.
    pub flow_paths_repaired: u64,
    /// Augmenting paths found by post-repair re-augmentation.
    pub flow_paths_reaugmented: u64,
    /// Solve steps that (re)built a flow network cold or fell back cold.
    pub flow_cold_rebuilds: u64,
    /// Deletion-aware reduced-set compactions across all sessions.
    pub reduced_compactions: u64,
}

impl WarmAggregate {
    /// Folds one step's solver statistics into the aggregate.
    pub fn record(&mut self, stats: &SessionSolveStats) {
        self.flow_warm_reuses += stats.flow_warm_reused as u64;
        self.flow_paths_repaired += stats.flow_paths_repaired;
        self.flow_paths_reaugmented += stats.flow_paths_reaugmented;
        self.flow_cold_rebuilds += stats.flow_cold_rebuild as u64;
        self.reduced_compactions += stats.reduced_compactions;
    }
}

/// The warm-start counter object embedded in `stats` responses.
pub fn warm_stats_json(warm: &WarmAggregate) -> String {
    format!(
        "{{\"flow_warm_reuses\": {}, \"flow_paths_repaired\": {}, \
         \"flow_paths_reaugmented\": {}, \"flow_cold_rebuilds\": {}, \
         \"reduced_compactions\": {}}}",
        warm.flow_warm_reuses,
        warm.flow_paths_repaired,
        warm.flow_paths_reaugmented,
        warm.flow_cold_rebuilds,
        warm.reduced_compactions,
    )
}

/// Aggregate tenancy counters: live registry totals across every tenant
/// plus the eviction/reaping history, rendered in `stats` responses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenancyStats {
    /// Tenants seen (including the anonymous one once it is touched).
    pub tenants: u64,
    /// Compiled queries resident across all tenants.
    pub queries: u64,
    /// Frozen instances resident across all tenants.
    pub dbs: u64,
    /// Open sessions across all tenants.
    pub sessions: u64,
    /// Sum of the tenants' resident-byte ledgers.
    pub resident_bytes: u64,
    /// Queries LRU-evicted by quota since start.
    pub evicted_queries: u64,
    /// Instances LRU-evicted by quota (count or bytes) since start.
    pub evicted_dbs: u64,
    /// Sessions reaped by the idle TTL since start.
    pub reaped_sessions: u64,
}

/// The tenancy counter object embedded in `stats` responses.
pub fn tenancy_stats_json(t: &TenancyStats) -> String {
    format!(
        "{{\"tenants\": {}, \"queries\": {}, \"dbs\": {}, \"sessions\": {}, \
         \"resident_bytes\": {}, \"evicted_queries\": {}, \"evicted_dbs\": {}, \
         \"reaped_sessions\": {}}}",
        t.tenants,
        t.queries,
        t.dbs,
        t.sessions,
        t.resident_bytes,
        t.evicted_queries,
        t.evicted_dbs,
        t.reaped_sessions,
    )
}

/// The daemon's `stats` object: uptime, per-verb request counts, per-kind
/// error counts, the plan-cache counters, the aggregate warm-start
/// counters and the tenancy counters. Shared by the `stats` verb and
/// anything rendering an in-process view, so a thin client re-emitting the
/// raw object is byte-identical to both.
pub fn stats_json(
    uptime_ms: u64,
    requests_by_verb: &BTreeMap<String, u64>,
    errors_by_kind: &BTreeMap<String, u64>,
    cache: &PlanCacheStats,
    warm: &WarmAggregate,
    tenancy: &TenancyStats,
) -> String {
    format!(
        "{{\"uptime_ms\": {uptime_ms}, \"requests\": {}, \"errors\": {}, \"plan_cache\": {}, \
         \"warm_flow\": {}, \"tenancy\": {}}}",
        counter_map_json(requests_by_verb),
        counter_map_json(errors_by_kind),
        plan_cache_stats_json(cache),
        warm_stats_json(warm),
        tenancy_stats_json(tenancy),
    )
}

/// A parsed JSON value. Numbers are kept as `f64` — every quantity the
/// protocol carries (handles are strings; counts, budgets and thread counts
/// are well under 2^53) round-trips exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Insertion-ordered key/value pairs (duplicate keys keep the first).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Deepest container nesting [`parse_json`] accepts. The protocol never
/// nests more than four levels; 64 leaves generous headroom while keeping
/// recursion depth (and thus stack use) bounded against adversarial
/// `[[[[...]]]]` input.
pub const MAX_DEPTH: usize = 64;

/// Longest decoded string (in bytes) [`parse_json`] accepts — matches the
/// server's default request-line cap, so any string that fits in a legal
/// frame parses, while a standalone use of the parser still cannot be made
/// to allocate without bound.
pub const MAX_STRING_BYTES: usize = 1 << 20;

/// Parses one JSON document (object, array or scalar). Trailing garbage is
/// an error; leading/trailing whitespace is fine. Pathological input —
/// nesting beyond [`MAX_DEPTH`], strings beyond [`MAX_STRING_BYTES`] — is
/// rejected with a `limit:`-prefixed error, which the daemon reports as
/// `bad_request` rather than a parse failure.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(text, bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(
    text: &str,
    bytes: &[u8],
    pos: &mut usize,
    depth: usize,
) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err(format!("limit: nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or '}}' at byte {} (found {:?})",
                            *pos,
                            other.map(|&c| c as char)
                        ))
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or ']' at byte {} (found {:?})",
                            *pos,
                            other.map(|&c| c as char)
                        ))
                    }
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(text, bytes, pos)?)),
        Some(b't') => parse_keyword(text, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(text, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(text, pos, "null", JsonValue::Null),
        Some(_) => parse_number(text, bytes, pos),
    }
}

fn parse_keyword(
    text: &str,
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if text[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    text[start..*pos]
        .parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        if out.len() > MAX_STRING_BYTES {
            return Err(format!(
                "limit: string longer than {MAX_STRING_BYTES} bytes"
            ));
        }
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = text
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape {hex}"))?;
                        // Surrogate pairs are not needed by the protocol
                        // (the escaper only emits \u00xx controls); reject
                        // them loudly instead of decoding garbage.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {:?}", other.map(|&c| c as char))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar from the source text.
                let rest = &text[*pos..];
                let c = rest.chars().next().expect("non-empty by guard");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Extracts the **raw source text** of `"key": <value>` from a JSON
/// document: the exact byte span of the value, string-aware and
/// brace-balanced. This is how the thin clients re-emit server-rendered
/// report/event objects verbatim (guaranteeing remote output is
/// byte-identical to local output) without a parse → re-serialize round
/// trip that could reformat them.
pub fn extract_raw<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)?;
    let mut rest = doc[at + needle.len()..].trim_start();
    // Scalar values end at the next comma/brace at depth 0; containers are
    // brace-balanced.
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' if depth > 0 => {
                depth -= 1;
                if depth == 0 {
                    rest = &rest[..=i];
                    return Some(rest);
                }
            }
            b',' | b'}' | b']' if depth == 0 => {
                rest = rest[..i].trim_end();
                return Some(rest);
            }
            _ => {}
        }
    }
    Some(rest.trim_end())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn parse_round_trips_escaped_strings() {
        let v = parse_json("\"a\\\"b\\\\c\\u000ad\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn parse_objects_arrays_numbers() {
        let v = parse_json(
            "{\"op\": \"solve\", \"n\": 42, \"neg\": -1.5, \"ok\": true, \
             \"none\": null, \"xs\": [1, 2, 3], \"nested\": {\"k\": []}}",
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(JsonValue::as_str), Some("solve"));
        assert_eq!(v.get("n").and_then(JsonValue::as_usize), Some(42));
        assert_eq!(v.get("neg").and_then(JsonValue::as_f64), Some(-1.5));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert!(v.get("none").unwrap().is_null());
        assert_eq!(v.get("xs").and_then(JsonValue::as_array).unwrap().len(), 3);
        assert!(v.get("nested").unwrap().get("k").is_some());
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("tru").is_err());
    }

    #[test]
    fn parse_rejects_pathological_nesting() {
        // One level inside the cap parses; one past it is refused with a
        // limit error (reported as bad_request, not parse, by the daemon).
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse_json(&ok).is_ok());
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse_json(&deep).unwrap_err();
        assert!(err.starts_with("limit:"), "unexpected error: {err}");
        let deep_obj = format!(
            "{}1{}",
            "{\"k\": ".repeat(MAX_DEPTH + 1),
            "}".repeat(MAX_DEPTH + 1)
        );
        assert!(parse_json(&deep_obj).unwrap_err().starts_with("limit:"));
    }

    #[test]
    fn parse_rejects_oversized_strings() {
        let big = format!("\"{}\"", "x".repeat(MAX_STRING_BYTES + 2));
        let err = parse_json(&big).unwrap_err();
        assert!(err.starts_with("limit:"), "unexpected error: {err}");
        // At the cap exactly is fine.
        let ok = format!("\"{}\"", "x".repeat(MAX_STRING_BYTES));
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn extract_raw_returns_exact_value_spans() {
        let doc =
            "{\"ok\": true, \"event\": {\"op\": \"solve\", \"xs\": [1, {\"y\": \"}\"}]}, \"z\": 3}";
        assert_eq!(
            extract_raw(doc, "event"),
            Some("{\"op\": \"solve\", \"xs\": [1, {\"y\": \"}\"}]}")
        );
        assert_eq!(extract_raw(doc, "ok"), Some("true"));
        assert_eq!(extract_raw(doc, "z"), Some("3"));
        let arr = "{\"results\": [{\"a\": 1}, {\"b\": \"],\"}], \"tail\": 0}";
        assert_eq!(
            extract_raw(arr, "results"),
            Some("[{\"a\": 1}, {\"b\": \"],\"}]")
        );
        assert_eq!(extract_raw(doc, "missing"), None);
    }
}
