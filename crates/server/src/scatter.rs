//! Scatter/gather over several `resd` processes: shard snapshots spread
//! round-robin across endpoints, solved remotely with the protocol's
//! `batch` verb, merged here into the report the whole instance would have
//! produced.
//!
//! This is the remote twin of `resilience_core::shard::solve_sharded`, with
//! two differences dictated by the wire format:
//!
//! * the merge works on **rendered** reports — resilience / witness counts
//!   / method strings / contingency *fact texts* — because that is what the
//!   daemons return (and shard snapshots carry their label maps, so the
//!   fact texts already speak the whole instance's vocabulary);
//! * each connected component of the normalized query is scattered as its
//!   own compiled query (components are solved independently per Lemma 14
//!   and merged by component-wise minimum, exactly like the in-process
//!   path), sent as query text via `Display`.
//!
//! The merge is deterministic: shards are assigned and absorbed in index
//! order, contingency facts are sorted, and ties between query components
//! break toward the first component.

use crate::client::{Client, RetryPolicy};
use crate::jsonio::{self, JsonValue};
use cq::Query;
use resilience_core::engine::Engine;
use std::fmt::Write as _;
use std::path::Path;

/// One remote per-shard result, parsed from a `batch` row.
struct RemoteReport {
    resilience: Option<usize>,
    witnesses: usize,
    method: String,
    contingency: Option<Vec<String>>,
}

/// The merged scatter/gather result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScatterReport {
    /// Merged resilience (`None` = unfalsifiable).
    pub resilience: Option<usize>,
    /// Merged witness count (product over query components of per-component
    /// sums, saturating).
    pub witnesses: usize,
    /// Merged method string, matching what a whole-instance solve renders:
    /// the uniform per-shard method, `ShardGather` when shards disagreed,
    /// `ComponentMinimum` for disconnected queries, `AlreadyFalse` /
    /// `Unfalsifiable` for the degenerate outcomes.
    pub method: String,
    /// Union of the winning component's per-shard contingency fact texts,
    /// sorted; `None` when unfalsifiable or a shard omitted its set.
    pub contingency: Option<Vec<String>>,
    /// Shards solved.
    pub shards: usize,
    /// Connected components of the normalized query.
    pub components: usize,
}

impl ScatterReport {
    /// Renders the merged result in the solve-report JSON shape (`tuples`
    /// omitted — the gather never holds the whole instance).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"witnesses\": {}", self.witnesses);
        match self.resilience {
            Some(k) => {
                let _ = write!(out, ", \"resilience\": {k}, \"unfalsifiable\": false");
            }
            None => out.push_str(", \"resilience\": null, \"unfalsifiable\": true"),
        }
        let _ = write!(
            out,
            ", \"method\": \"{}\"",
            jsonio::json_escape(&self.method)
        );
        match &self.contingency {
            Some(gamma) => {
                let rows: Vec<String> = gamma
                    .iter()
                    .map(|f| format!("\"{}\"", jsonio::json_escape(f)))
                    .collect();
                let _ = write!(out, ", \"contingency\": [{}]", rows.join(", "));
            }
            None => out.push_str(", \"contingency\": null"),
        }
        let _ = write!(
            out,
            ", \"shards\": {}, \"query_components\": {}}}",
            self.shards, self.components
        );
        out
    }
}

/// The component query texts to scatter: the query itself when its
/// normalized form is connected, one subquery text per component otherwise.
pub fn component_texts(query: &Query) -> Vec<String> {
    let compiled = Engine::compile(query);
    let normalized = &compiled.classification().evidence.normalized;
    let components = normalized.components();
    if components.len() <= 1 {
        vec![query.to_string()]
    } else {
        components
            .iter()
            .map(|c| normalized.subquery(c).to_string())
            .collect()
    }
}

/// One endpoint's connection plus its handles.
struct Peer {
    client: Client,
    /// `query_id` per component, in component order.
    query_ids: Vec<String>,
    /// `db_id` per shard this peer holds, with the shard's global index.
    dbs: Vec<(usize, String)>,
}

/// Scatters `snapshots` round-robin across `endpoints`, solves every
/// (component, shard) pair remotely via `batch`, and gathers. `options_json`
/// is forwarded verbatim as each request's `options` object (pass `None`
/// for server defaults).
pub fn scatter_solve(
    query: &Query,
    endpoints: &[String],
    snapshots: &[&Path],
    options_json: Option<&str>,
) -> Result<ScatterReport, String> {
    if endpoints.is_empty() {
        return Err("scatter needs at least one endpoint".to_string());
    }
    if snapshots.is_empty() {
        return Err("scatter needs at least one shard snapshot".to_string());
    }
    let texts = component_texts(query);

    // Connect, register the component queries, and load this peer's shards.
    let mut peers: Vec<Peer> = Vec::with_capacity(endpoints.len());
    for (p, addr) in endpoints.iter().enumerate() {
        let mut client = Client::connect_retrying(addr, RetryPolicy::standard())
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let mut query_ids = Vec::with_capacity(texts.len());
        for text in &texts {
            let (qid, _, _) = client
                .compile(text)
                .map_err(|e| format!("{addr}: compile failed: {e}"))?;
            query_ids.push(qid);
        }
        let mut dbs = Vec::new();
        for (s, path) in snapshots.iter().enumerate() {
            if s % endpoints.len() != p {
                continue;
            }
            let (v, _) = client
                .request(&format!(
                    "{{\"op\": \"load\", \"query_id\": \"{}\", \"snapshot\": \"{}\"}}",
                    jsonio::json_escape(&query_ids[0]),
                    jsonio::json_escape(&path.display().to_string())
                ))
                .map_err(|e| format!("{addr}: loading shard {s} failed: {e}"))?;
            let db_id = v
                .get("db_id")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{addr}: load response missing db_id"))?
                .to_string();
            dbs.push((s, db_id));
        }
        peers.push(Peer {
            client,
            query_ids,
            dbs,
        });
    }

    // Per component: one batch per peer, rows in the peer's shard order.
    // reports[c][s] = the remote report of component c on shard s.
    let mut reports: Vec<Vec<Option<RemoteReport>>> = (0..texts.len())
        .map(|_| (0..snapshots.len()).map(|_| None).collect())
        .collect();
    for (c, slot) in reports.iter_mut().enumerate() {
        for (peer, addr) in peers.iter_mut().zip(endpoints) {
            if peer.dbs.is_empty() {
                continue;
            }
            let ids: Vec<String> = peer
                .dbs
                .iter()
                .map(|(_, id)| format!("\"{}\"", jsonio::json_escape(id)))
                .collect();
            let options = options_json
                .map(|o| format!(", \"options\": {o}"))
                .unwrap_or_default();
            let (_, raw) = peer
                .client
                .request(&format!(
                    "{{\"op\": \"batch\", \"query_id\": \"{}\", \"db_ids\": [{}]{options}}}",
                    jsonio::json_escape(&peer.query_ids[c]),
                    ids.join(", ")
                ))
                .map_err(|e| format!("{addr}: batch solve failed: {e}"))?;
            let rows = jsonio::parse_json(&raw)
                .map_err(|e| format!("{addr}: malformed batch response: {e}"))?
                .get("results")
                .and_then(JsonValue::as_array)
                .map(|r| r.to_vec())
                .ok_or_else(|| format!("{addr}: batch response missing results"))?;
            if rows.len() != peer.dbs.len() {
                return Err(format!("{addr}: batch returned {} rows", rows.len()));
            }
            for ((s, _), row) in peer.dbs.iter().zip(rows) {
                if let Some(err) = row.get("error").and_then(JsonValue::as_str) {
                    return Err(format!("{addr}: shard {s} solve failed: {err}"));
                }
                slot[*s] = Some(parse_report(&row).map_err(|e| format!("{addr}: {e}"))?);
            }
        }
    }

    let reports: Vec<Vec<RemoteReport>> = reports
        .into_iter()
        .map(|slot| {
            slot.into_iter()
                .map(|r| r.expect("every (component, shard) pair solved"))
                .collect()
        })
        .collect();
    Ok(merge(&reports, snapshots.len()))
}

fn parse_report(row: &JsonValue) -> Result<RemoteReport, String> {
    let unfalsifiable = row
        .get("unfalsifiable")
        .and_then(JsonValue::as_bool)
        .ok_or("report missing unfalsifiable")?;
    let resilience = if unfalsifiable {
        None
    } else {
        Some(
            row.get("resilience")
                .and_then(JsonValue::as_usize)
                .ok_or("report missing resilience")?,
        )
    };
    let witnesses = row
        .get("witnesses")
        .and_then(JsonValue::as_usize)
        .ok_or("report missing witnesses")?;
    let method = row
        .get("method")
        .and_then(JsonValue::as_str)
        .ok_or("report missing method")?
        .to_string();
    let contingency = match row.get("contingency") {
        Some(JsonValue::Arr(facts)) => {
            let mut rendered = Vec::with_capacity(facts.len());
            for f in facts {
                rendered.push(
                    f.as_str()
                        .ok_or("contingency facts must be strings")?
                        .to_string(),
                );
            }
            Some(rendered)
        }
        _ => None,
    };
    Ok(RemoteReport {
        resilience,
        witnesses,
        method,
        contingency,
    })
}

/// The fact-level twin of `resilience_core::shard`'s gather; see the module
/// docs there for why each rule is sound.
fn merge(reports: &[Vec<RemoteReport>], shards: usize) -> ScatterReport {
    let components = reports.len();
    // Per component: summed resilience, any-unfalsifiable, summed
    // witnesses, union of contingency facts, lost-certificate flag.
    let mut comp_res = vec![0usize; components];
    let mut comp_unf = vec![false; components];
    let mut comp_wit = vec![0usize; components];
    let mut comp_gamma: Vec<Vec<String>> = vec![Vec::new(); components];
    let mut comp_lost = vec![false; components];
    let mut methods: Vec<String> = Vec::new();
    for (c, per_shard) in reports.iter().enumerate() {
        for r in per_shard {
            comp_wit[c] = comp_wit[c].saturating_add(r.witnesses);
            match r.resilience {
                None => comp_unf[c] = true,
                Some(k) => {
                    comp_res[c] += k;
                    if k > 0 {
                        match &r.contingency {
                            Some(gamma) => comp_gamma[c].extend(gamma.iter().cloned()),
                            None => comp_lost[c] = true,
                        }
                    }
                }
            }
            if components == 1 && r.witnesses > 0 && !methods.contains(&r.method) {
                methods.push(r.method.clone());
            }
        }
    }

    let already_false = comp_wit.contains(&0);
    let witnesses = if already_false {
        0
    } else {
        comp_wit
            .iter()
            .fold(1usize, |acc, &w| acc.saturating_mul(w))
    };
    if already_false {
        return ScatterReport {
            resilience: Some(0),
            witnesses: 0,
            method: "AlreadyFalse".to_string(),
            contingency: Some(Vec::new()),
            shards,
            components,
        };
    }
    if comp_unf.iter().all(|&u| u) {
        return ScatterReport {
            resilience: None,
            witnesses,
            method: "Unfalsifiable".to_string(),
            contingency: None,
            shards,
            components,
        };
    }
    let (winner, method) = if components == 1 {
        let method = match methods.as_slice() {
            [single] => single.clone(),
            _ => "ShardGather".to_string(),
        };
        (0, method)
    } else {
        let winner = (0..components)
            .filter(|&c| !comp_unf[c])
            .min_by_key(|&c| (comp_res[c], c))
            .expect("some component is falsifiable");
        (winner, "ComponentMinimum".to_string())
    };
    let mut gamma = std::mem::take(&mut comp_gamma[winner]);
    gamma.sort_unstable();
    ScatterReport {
        resilience: Some(comp_res[winner]),
        witnesses,
        method,
        contingency: (!comp_lost[winner]).then_some(gamma),
        shards,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite(k: usize, w: usize, gamma: &[&str]) -> RemoteReport {
        RemoteReport {
            resilience: Some(k),
            witnesses: w,
            method: "WitnessFlow".to_string(),
            contingency: Some(gamma.iter().map(|s| s.to_string()).collect()),
        }
    }

    #[test]
    fn connected_merge_sums_and_sorts() {
        let merged = merge(
            &[vec![
                finite(2, 3, &["R(5,6)", "R(1,2)"]),
                finite(1, 1, &["R(9,9)"]),
            ]],
            2,
        );
        assert_eq!(merged.resilience, Some(3));
        assert_eq!(merged.witnesses, 4);
        assert_eq!(merged.method, "WitnessFlow");
        assert_eq!(
            merged.contingency.as_deref(),
            Some(
                &[
                    "R(1,2)".to_string(),
                    "R(5,6)".to_string(),
                    "R(9,9)".to_string()
                ][..]
            )
        );
    }

    #[test]
    fn component_merge_takes_first_minimum() {
        // Component 0: 2 + 1 = 3; component 1: 0 + 3 = 3 → tie, first wins.
        let merged = merge(
            &[
                vec![finite(2, 2, &["R(1,1)"]), finite(1, 1, &["R(2,2)"])],
                vec![finite(0, 4, &[]), finite(3, 1, &["S(1,1)"])],
            ],
            2,
        );
        assert_eq!(merged.resilience, Some(3));
        assert_eq!(merged.method, "ComponentMinimum");
        assert_eq!(merged.witnesses, 3 * 5);
        assert_eq!(
            merged.contingency.as_deref(),
            Some(&["R(1,1)".to_string(), "R(2,2)".to_string()][..])
        );
    }

    #[test]
    fn empty_component_short_circuits_and_unfalsifiable_requires_all() {
        let empty = RemoteReport {
            resilience: Some(0),
            witnesses: 0,
            method: "AlreadyFalse".to_string(),
            contingency: Some(Vec::new()),
        };
        let unf = RemoteReport {
            resilience: None,
            witnesses: 2,
            method: "Unfalsifiable".to_string(),
            contingency: None,
        };
        let merged = merge(&[vec![finite(1, 1, &["R(1,1)"])], vec![empty]], 1);
        assert_eq!(merged.resilience, Some(0));
        assert_eq!(merged.method, "AlreadyFalse");
        // One unfalsifiable component, one falsifiable: the falsifiable one
        // still bounds the minimum.
        let merged = merge(&[vec![unf], vec![finite(2, 1, &["S(1,2)"])]], 1);
        assert_eq!(merged.resilience, Some(2));
        assert_eq!(merged.method, "ComponentMinimum");
    }

    #[test]
    fn mixed_methods_render_shard_gather() {
        let mut other = finite(1, 2, &["R(3,3)"]);
        other.method = "ExactBranchAndBound".to_string();
        let merged = merge(&[vec![finite(1, 2, &["R(1,1)"]), other]], 2);
        assert_eq!(merged.method, "ShardGather");
        assert_eq!(merged.resilience, Some(2));
    }
}
