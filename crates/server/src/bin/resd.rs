//! `resd` — the resilience service daemon.
//!
//! ```text
//! resd <addr> [--workers N] [--shutdown-file PATH] [--plan-cache-capacity N]
//! ```
//!
//! Binds `<addr>` (port 0 picks a free port; the actually bound address is
//! printed as `resd listening on <addr>`), serves the newline-delimited
//! JSON protocol documented in the `server` crate, and exits on the
//! `shutdown` verb or when `--shutdown-file` appears.

use server::{serve, ServerConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: resd <addr> [--workers N] [--shutdown-file PATH] [--plan-cache-capacity N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let mut config = ServerConfig::new(addr.clone());
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config = config.workers(n),
                None => return usage(),
            },
            "--shutdown-file" => match it.next() {
                Some(path) => config = config.shutdown_file(path),
                None => return usage(),
            },
            "--plan-cache-capacity" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config = config.plan_cache_capacity(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match serve(config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("resd: {e}");
            ExitCode::FAILURE
        }
    }
}
