//! `resd` — the resilience service daemon.
//!
//! ```text
//! resd <addr> [--workers N] [--shutdown-file PATH] [--plan-cache-capacity N]
//!             [--pipeline-depth N] [--max-conns N] [--session-ttl-ms N]
//!             [--max-queries N] [--max-dbs N] [--max-sessions N]
//!             [--max-resident-mb N]
//! ```
//!
//! Binds `<addr>` (port 0 picks a free port; the actually bound address is
//! printed as `resd listening on <addr>`), serves the newline-delimited
//! JSON protocol documented in the `server` crate, and exits on the
//! `shutdown` verb or when `--shutdown-file` appears. The `--max-*` flags
//! set the per-tenant quotas (`--max-resident-mb` in MiB of estimated
//! frozen-instance bytes).

use server::{serve, ServerConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: resd <addr> [--workers N] [--shutdown-file PATH] [--plan-cache-capacity N]\n\
         \x20            [--pipeline-depth N] [--max-conns N] [--session-ttl-ms N]\n\
         \x20            [--max-queries N] [--max-dbs N] [--max-sessions N] [--max-resident-mb N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let mut config = ServerConfig::new(addr.clone());
    let mut quotas = config.quotas;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        if arg == "--shutdown-file" {
            match it.next() {
                Some(path) => config = config.shutdown_file(path),
                None => return usage(),
            }
            continue;
        }
        let Some(n) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
            return usage();
        };
        match arg.as_str() {
            "--workers" => config = config.workers(n),
            "--plan-cache-capacity" => config = config.plan_cache_capacity(n),
            "--pipeline-depth" => config = config.pipeline_depth(n),
            "--max-conns" => config = config.max_conns(n),
            "--session-ttl-ms" => config = config.session_ttl_ms(n as u64),
            "--max-queries" => quotas.max_compiled_queries = n,
            "--max-dbs" => quotas.max_frozen_instances = n,
            "--max-sessions" => quotas.max_open_sessions = n,
            "--max-resident-mb" => quotas.max_resident_bytes = n << 20,
            _ => return usage(),
        }
    }
    config = config.quotas(quotas);
    match serve(config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("resd: {e}");
            ExitCode::FAILURE
        }
    }
}
