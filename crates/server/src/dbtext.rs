//! The textual database/fact format shared by `rescli` and `resd`.
//!
//! One `Rel(c1,c2,...)` fact per line, `#` comments; constants are
//! non-negative integers or arbitrary labels. Labels are interned through
//! the shared [`ConstPool`] and offset past the largest numeric constant of
//! the input, so a label can never collide with an explicit numeric
//! constant. Extracted from `rescli` so the daemon parses uploaded instances
//! and fact references **identically** to the local CLI (same ids, same
//! label resolution, same error messages).

use cq::Query;
use database::shard::MAX_STREAM_ARITY;
use database::{ConstPool, Constant, Database, StreamTuple, TupleId, TupleStore};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader};
use std::path::{Path, PathBuf};

/// One parsed constant of a database file: a numeric literal or a label to
/// be interned.
enum RawConstant {
    Number(u64),
    Label(String),
}

/// Splits one `Rel(c1,...,ck)` fact into its relation name and the raw
/// constant texts, validating the parenthesis shape and that the relation
/// exists in the query. Shared by the database loader, the what-if script
/// parser and the daemon's fact decoding so the fact syntax cannot drift;
/// errors carry no line number (callers prefix their own).
pub fn split_fact<'l>(q: &Query, line: &'l str) -> Result<(&'l str, Vec<&'l str>), String> {
    split_fact_in_schema(q.schema(), line)
}

/// Parses the textual database format: one `Rel(c1,...,ck)` fact per line.
///
/// Labels are interned through [`ConstPool`] and offset past the largest
/// numeric constant in `text`, so explicit numbers and interned labels can
/// never collide.
pub fn parse_database(q: &Query, text: &str) -> Result<Database, String> {
    parse_database_with_labels(q, text).map(|(db, _)| db)
}

/// [`parse_database`] that also returns the label → constant resolution, so
/// follow-up inputs referencing the same labels (what-if scripts, protocol
/// fact references) resolve identically to the loaded text.
pub fn parse_database_with_labels(
    q: &Query,
    text: &str,
) -> Result<(Database, HashMap<String, u64>), String> {
    let mut facts: Vec<(String, Vec<RawConstant>)> = Vec::new();
    let mut max_number = 0u64;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (rel, raw_values) =
            split_fact(q, line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let values: Result<Vec<RawConstant>, String> = raw_values
            .iter()
            .map(|&v| {
                if let Ok(n) = v.parse::<u64>() {
                    max_number = max_number.max(n);
                    Ok(RawConstant::Number(n))
                } else if v.is_empty() {
                    Err(format!("line {}: empty constant", lineno + 1))
                } else {
                    Ok(RawConstant::Label(v.to_string()))
                }
            })
            .collect();
        facts.push((rel.to_string(), values?));
    }

    // Second pass: labels become `offset + pool index`, strictly above every
    // numeric constant seen in the input.
    let offset = max_number
        .checked_add(1)
        .ok_or_else(|| "constant u64::MAX leaves no room for labels".to_string())?;
    let mut pool = ConstPool::new();
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut db = Database::for_query(q);
    for (rel, values) in facts {
        let resolved: Result<Vec<u64>, String> = values
            .iter()
            .map(|value| match value {
                RawConstant::Number(n) => Ok(*n),
                RawConstant::Label(label) => {
                    let c = offset
                        .checked_add(pool.intern(label).value())
                        .ok_or_else(|| format!("too many labels to intern past {max_number}"))?;
                    labels.entry(label.clone()).or_insert(c);
                    Ok(c)
                }
            })
            .collect();
        db.insert_named(&rel, &resolved?);
    }
    Ok((db, labels))
}

/// A replayable, bounded-memory view of a textual database file: the
/// streaming twin of [`parse_database_with_labels`] for instances too large
/// to materialize.
///
/// [`stream_database`] makes one validation pass over the file — checking
/// every fact against the query, recording the largest numeric constant and
/// interning labels in first-occurrence order, exactly like the eager
/// parser — and returns this spec. Each [`TextStreamSpec::stream`] call
/// then re-reads the file line by line, resolving constants through the
/// recorded label map, holding one line at a time. Replays are what
/// `database::shard`'s multi-pass pipeline needs, and the label-offset
/// invariant (labels intern strictly past the file's largest number) is
/// preserved because the offset was fixed by the validation pass.
///
/// The streamed tuples are the eager parser's, in the same order, so
/// freezing the stream and freezing [`parse_database`]'s result produce
/// identical instances.
#[derive(Clone, Debug)]
pub struct TextStreamSpec {
    path: PathBuf,
    schema: cq::Schema,
    labels: HashMap<String, u64>,
    facts: usize,
}

impl TextStreamSpec {
    /// The label → constant resolution of the validation pass (identical to
    /// [`parse_database_with_labels`]'s map).
    pub fn labels(&self) -> &HashMap<String, u64> {
        &self.labels
    }

    /// The schema tuples are emitted against.
    pub fn schema(&self) -> &cq::Schema {
        &self.schema
    }

    /// Facts the file contains (counting duplicates).
    pub fn facts(&self) -> usize {
        self.facts
    }

    /// Starts one replay pass over the file.
    ///
    /// # Panics
    /// The validation pass proved every line well-formed; if the file
    /// changes between passes (new I/O errors, new malformed or unknown
    /// facts), the iterator panics rather than silently diverging from the
    /// plan built on an earlier pass.
    pub fn stream(&self) -> io::Result<TextStream<'_>> {
        let file = std::fs::File::open(&self.path)?;
        Ok(TextStream {
            spec: self,
            lines: BufReader::new(file).lines(),
        })
    }
}

/// One pass of a [`TextStreamSpec`].
pub struct TextStream<'a> {
    spec: &'a TextStreamSpec,
    lines: std::io::Lines<BufReader<std::fs::File>>,
}

impl Iterator for TextStream<'_> {
    type Item = StreamTuple;

    fn next(&mut self) -> Option<StreamTuple> {
        loop {
            let raw = match self.lines.next()? {
                Ok(raw) => raw,
                Err(e) => panic!("database file changed during streaming load: {e}"),
            };
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (rel, raw_values) = split_fact_in_schema(&self.spec.schema, line)
                .unwrap_or_else(|e| panic!("database file changed during streaming load: {e}"));
            let rel_id = self
                .spec
                .schema
                .relation_id(rel)
                .expect("validated relation");
            let values: Vec<Constant> = raw_values
                .iter()
                .map(|&v| {
                    let n = if let Ok(n) = v.parse::<u64>() {
                        n
                    } else if let Some(&c) = self.spec.labels.get(v) {
                        c
                    } else {
                        panic!("database file changed during streaming load: unknown label {v}")
                    };
                    Constant(n)
                })
                .collect();
            return Some(StreamTuple::new(rel_id, &values));
        }
    }
}

/// [`split_fact`] against a bare schema (the streaming loader carries no
/// query, only the schema recorded by its validation pass).
fn split_fact_in_schema<'l>(
    schema: &cq::Schema,
    line: &'l str,
) -> Result<(&'l str, Vec<&'l str>), String> {
    let open = line.find('(').ok_or("expected Rel(...)")?;
    let close = line
        .rfind(')')
        .filter(|&close| close > open)
        .ok_or("missing ')'")?;
    let rel = line[..open].trim();
    if schema.relation_id(rel).is_none() {
        return Err(format!("relation {rel} not in the query"));
    }
    Ok((
        rel,
        line[open + 1..close].split(',').map(str::trim).collect(),
    ))
}

/// Validation pass of the streaming loader: checks every fact, fixes the
/// label offset past the file's largest numeric constant, and returns the
/// replayable [`TextStreamSpec`]. Memory is bounded by the distinct-label
/// count, never by the fact count.
pub fn stream_database(q: &Query, path: &Path) -> Result<TextStreamSpec, String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut max_number = 0u64;
    let mut label_order: Vec<String> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut facts = 0usize;
    for (lineno, raw) in BufReader::new(file).lines().enumerate() {
        let raw = raw.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (rel, raw_values) =
            split_fact(q, line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let arity = q
            .schema()
            .arity(q.schema().relation_id(rel).expect("validated"));
        if raw_values.len() != arity {
            return Err(format!(
                "line {}: {rel} expects {arity} constants, got {}",
                lineno + 1,
                raw_values.len()
            ));
        }
        if arity > MAX_STREAM_ARITY {
            return Err(format!(
                "line {}: relation {rel} has arity {arity} > {MAX_STREAM_ARITY} (streaming limit)",
                lineno + 1
            ));
        }
        for v in raw_values {
            if let Ok(n) = v.parse::<u64>() {
                max_number = max_number.max(n);
            } else if v.is_empty() {
                return Err(format!("line {}: empty constant", lineno + 1));
            } else if seen.insert(v.to_string()) {
                label_order.push(v.to_string());
            }
        }
        facts += 1;
    }
    // Same interning rule as the eager parser: `offset + pool index`, in
    // first-occurrence order, strictly past every numeric constant.
    let offset = max_number
        .checked_add(1)
        .ok_or_else(|| "constant u64::MAX leaves no room for labels".to_string())?;
    let mut pool = ConstPool::new();
    let mut labels: HashMap<String, u64> = HashMap::new();
    for label in &label_order {
        let c = offset
            .checked_add(pool.intern(label).value())
            .ok_or_else(|| format!("too many labels to intern past {max_number}"))?;
        labels.insert(label.clone(), c);
    }
    Ok(TextStreamSpec {
        path: path.to_path_buf(),
        schema: q.schema().clone(),
        labels,
        facts,
    })
}

/// Resident-byte estimate of a label → constant map, charged against the
/// tenant byte quota next to [`database::FrozenDb::resident_bytes`]: a
/// label-heavy instance's registry entry is not free just because the
/// labels live outside the frozen arenas.
pub fn labels_bytes(labels: &HashMap<String, u64>) -> usize {
    labels
        .keys()
        .map(|name| name.len() + std::mem::size_of::<(String, u64)>())
        .sum()
}

/// Resolves one fact text `Rel(c1,...)` against a query schema and the
/// label resolution of a previously parsed database: numbers stay verbatim,
/// labels must occur in the loaded text (unknown labels are errors, never
/// silent fresh constants).
pub fn resolve_fact(
    q: &Query,
    labels: &HashMap<String, u64>,
    fact: &str,
) -> Result<(String, Vec<u64>), String> {
    let (rel, raw_values) = split_fact(q, fact.trim())?;
    let values: Result<Vec<u64>, String> = raw_values
        .iter()
        .map(|&v| {
            if let Ok(n) = v.parse::<u64>() {
                Ok(n)
            } else if let Some(&c) = labels.get(v) {
                Ok(c)
            } else if v.is_empty() {
                Err("empty constant".to_string())
            } else {
                Err(format!("label {v} does not occur in the database file"))
            }
        })
        .collect();
    Ok((rel.to_string(), values?))
}

/// [`resolve_fact`] + tuple lookup in a store: the id of the referenced
/// tuple, or an error naming the missing fact.
pub fn lookup_fact<S: TupleStore + ?Sized>(
    q: &Query,
    labels: &HashMap<String, u64>,
    db: &S,
    fact: &str,
) -> Result<TupleId, String> {
    let (rel, values) = resolve_fact(q, labels, fact)?;
    let rel_id = db
        .schema()
        .relation_id(&rel)
        .ok_or_else(|| format!("relation {rel} not in the instance"))?;
    let consts: Vec<database::Constant> = values.iter().map(|&v| v.into()).collect();
    db.lookup_values(rel_id, &consts)
        .ok_or_else(|| format!("no such tuple {rel}{values:?}"))
}

/// Renders a store back into the textual format (one fact per line, grouped
/// by relation in schema order, insertion order within a relation). Parsing
/// the result with [`parse_database`] reproduces the tuples; it is how thin
/// clients upload a local instance to the daemon.
pub fn to_text<S: TupleStore + ?Sized>(db: &S) -> String {
    let mut out = String::new();
    for rel in db.schema().relation_ids() {
        let name = db.schema().name(rel);
        for &t in db.tuples_of(rel) {
            let vals: Vec<String> = db.values_of(t).iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("{name}({})\n", vals.join(",")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    #[test]
    fn labels_do_not_collide_with_large_numeric_constants() {
        // Regression (from rescli): a fixed label-interning base aliased
        // explicit constants ≥ 1,000,000.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let text = "R(1000001, 7)\nR(alpha, 7)\nR(7, 9)\n";
        let db = parse_database(&q, text).unwrap();
        assert_eq!(db.num_tuples(), 3, "label collided with numeric constant");
    }

    #[test]
    fn labels_are_offset_past_the_input_maximum() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "R(42, alpha)\nR(7, beta)\n").unwrap();
        let r = db.schema().relation_id("R").unwrap();
        assert!(db.contains(r, &[42u64, 43]));
        assert!(db.contains(r, &[7u64, 44]));
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let q = parse_query("R(x,y)").unwrap();
        assert!(parse_database(&q, "R(1, 2\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_database(&q, "# ok\nZ(1, 2)\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_database(&q, "R(1, )\n")
            .unwrap_err()
            .contains("empty"));
        assert!(parse_database(&q, "R)2(\n").unwrap_err().contains("line 1"));
    }

    #[test]
    fn resolve_and_lookup_facts_match_the_loader() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let (db, labels) = parse_database_with_labels(&q, "R(a,b)\nR(b,c)\nR(7,9)\n").unwrap();
        let frozen = db.freeze();
        let t = lookup_fact(&q, &labels, &frozen, "R(a,b)").unwrap();
        assert_eq!(frozen.values_of(t), db.values_of(t));
        assert!(lookup_fact(&q, &labels, &frozen, "R(zz,b)")
            .unwrap_err()
            .contains("label zz"));
        assert!(lookup_fact(&q, &labels, &frozen, "Z(1,2)")
            .unwrap_err()
            .contains("relation Z"));
        assert!(lookup_fact(&q, &labels, &frozen, "R(9,7)")
            .unwrap_err()
            .contains("no such tuple"));
    }

    /// Writes `text` to a unique temp file for the streaming-loader tests.
    fn temp_db_file(tag: &str, text: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("dbtext-stream-{}-{tag}.db", std::process::id()));
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn streaming_loader_matches_the_eager_parser() {
        let q = parse_query("A(x), R(x,y)").unwrap();
        let text = "# header comment\nA(alpha)\nR(alpha, 9)\nR(9, beta)\n\nA(1000001)\n";
        let path = temp_db_file("eager", text);
        let spec = stream_database(&q, &path).unwrap();
        let (eager, eager_labels) = parse_database_with_labels(&q, text).unwrap();
        assert_eq!(spec.labels(), &eager_labels);
        assert_eq!(spec.facts(), 4);
        assert_eq!(spec.schema(), q.schema());

        let mut streamed = Database::for_query(&q);
        for t in spec.stream().unwrap() {
            streamed.insert(t.rel(), t.values());
        }
        assert_eq!(streamed.num_tuples(), eager.num_tuples());
        for rel in q.schema().relation_ids() {
            let vals = |db: &Database| -> Vec<Vec<u64>> {
                db.tuples_of(rel)
                    .iter()
                    .map(|&t| db.values_of(t).iter().map(|c| c.0).collect())
                    .collect()
            };
            assert_eq!(vals(&streamed), vals(&eager));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_loader_replays_identically() {
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let text = "R(a, 1)\nS(1, b)\nR(a, 1)\nS(2, c)\n";
        let path = temp_db_file("replay", text);
        let spec = stream_database(&q, &path).unwrap();
        let pass = |spec: &TextStreamSpec| -> Vec<(cq::RelId, Vec<u64>)> {
            spec.stream()
                .unwrap()
                .map(|t| (t.rel(), t.values().iter().map(|c| c.0).collect()))
                .collect()
        };
        let first = pass(&spec);
        assert_eq!(first.len(), 4, "duplicates stream as written");
        assert_eq!(first, pass(&spec));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_loader_reports_errors_with_line_numbers() {
        let q = parse_query("R(x,y)").unwrap();
        let path = temp_db_file("errors", "R(1, 2)\nZ(3)\n");
        let err = stream_database(&q, &path).unwrap_err();
        assert!(
            err.contains("line 2") && err.contains("relation Z"),
            "{err}"
        );
        std::fs::write(&path, "R(1, 2)\nR(3)\n").unwrap();
        let err = stream_database(&q, &path).unwrap_err();
        assert!(err.contains("line 2") && err.contains("expects 2"), "{err}");
        std::fs::remove_file(&path).ok();
        assert!(stream_database(&q, &path)
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn to_text_round_trips_through_the_parser() {
        let q = parse_query("A(x), R(x,y)").unwrap();
        let (db, _) = parse_database_with_labels(&q, "A(1)\nR(1,2)\nR(2,3)\nA(4)\n").unwrap();
        let text = to_text(&db);
        let re = parse_database(&q, &text).unwrap();
        assert_eq!(re.num_tuples(), db.num_tuples());
        for rel in db.schema().relation_ids() {
            let vals = |store: &Database, t: TupleId| -> Vec<u64> {
                store.values_of(t).iter().map(|c| c.0).collect()
            };
            let mut a: Vec<Vec<u64>> = db.tuples_of(rel).iter().map(|&t| vals(&db, t)).collect();
            let mut b: Vec<Vec<u64>> = re.tuples_of(rel).iter().map(|&t| vals(&re, t)).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }
}
