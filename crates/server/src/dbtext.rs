//! The textual database/fact format shared by `rescli` and `resd`.
//!
//! One `Rel(c1,c2,...)` fact per line, `#` comments; constants are
//! non-negative integers or arbitrary labels. Labels are interned through
//! the shared [`ConstPool`] and offset past the largest numeric constant of
//! the input, so a label can never collide with an explicit numeric
//! constant. Extracted from `rescli` so the daemon parses uploaded instances
//! and fact references **identically** to the local CLI (same ids, same
//! label resolution, same error messages).

use cq::Query;
use database::{ConstPool, Database, TupleId, TupleStore};
use std::collections::HashMap;

/// One parsed constant of a database file: a numeric literal or a label to
/// be interned.
enum RawConstant {
    Number(u64),
    Label(String),
}

/// Splits one `Rel(c1,...,ck)` fact into its relation name and the raw
/// constant texts, validating the parenthesis shape and that the relation
/// exists in the query. Shared by the database loader, the what-if script
/// parser and the daemon's fact decoding so the fact syntax cannot drift;
/// errors carry no line number (callers prefix their own).
pub fn split_fact<'l>(q: &Query, line: &'l str) -> Result<(&'l str, Vec<&'l str>), String> {
    let open = line.find('(').ok_or("expected Rel(...)")?;
    let close = line
        .rfind(')')
        .filter(|&close| close > open)
        .ok_or("missing ')'")?;
    let rel = line[..open].trim();
    if q.schema().relation_id(rel).is_none() {
        return Err(format!("relation {rel} not in the query"));
    }
    Ok((
        rel,
        line[open + 1..close].split(',').map(str::trim).collect(),
    ))
}

/// Parses the textual database format: one `Rel(c1,...,ck)` fact per line.
///
/// Labels are interned through [`ConstPool`] and offset past the largest
/// numeric constant in `text`, so explicit numbers and interned labels can
/// never collide.
pub fn parse_database(q: &Query, text: &str) -> Result<Database, String> {
    parse_database_with_labels(q, text).map(|(db, _)| db)
}

/// [`parse_database`] that also returns the label → constant resolution, so
/// follow-up inputs referencing the same labels (what-if scripts, protocol
/// fact references) resolve identically to the loaded text.
pub fn parse_database_with_labels(
    q: &Query,
    text: &str,
) -> Result<(Database, HashMap<String, u64>), String> {
    let mut facts: Vec<(String, Vec<RawConstant>)> = Vec::new();
    let mut max_number = 0u64;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (rel, raw_values) =
            split_fact(q, line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let values: Result<Vec<RawConstant>, String> = raw_values
            .iter()
            .map(|&v| {
                if let Ok(n) = v.parse::<u64>() {
                    max_number = max_number.max(n);
                    Ok(RawConstant::Number(n))
                } else if v.is_empty() {
                    Err(format!("line {}: empty constant", lineno + 1))
                } else {
                    Ok(RawConstant::Label(v.to_string()))
                }
            })
            .collect();
        facts.push((rel.to_string(), values?));
    }

    // Second pass: labels become `offset + pool index`, strictly above every
    // numeric constant seen in the input.
    let offset = max_number
        .checked_add(1)
        .ok_or_else(|| "constant u64::MAX leaves no room for labels".to_string())?;
    let mut pool = ConstPool::new();
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut db = Database::for_query(q);
    for (rel, values) in facts {
        let resolved: Result<Vec<u64>, String> = values
            .iter()
            .map(|value| match value {
                RawConstant::Number(n) => Ok(*n),
                RawConstant::Label(label) => {
                    let c = offset
                        .checked_add(pool.intern(label).value())
                        .ok_or_else(|| format!("too many labels to intern past {max_number}"))?;
                    labels.entry(label.clone()).or_insert(c);
                    Ok(c)
                }
            })
            .collect();
        db.insert_named(&rel, &resolved?);
    }
    Ok((db, labels))
}

/// Resolves one fact text `Rel(c1,...)` against a query schema and the
/// label resolution of a previously parsed database: numbers stay verbatim,
/// labels must occur in the loaded text (unknown labels are errors, never
/// silent fresh constants).
pub fn resolve_fact(
    q: &Query,
    labels: &HashMap<String, u64>,
    fact: &str,
) -> Result<(String, Vec<u64>), String> {
    let (rel, raw_values) = split_fact(q, fact.trim())?;
    let values: Result<Vec<u64>, String> = raw_values
        .iter()
        .map(|&v| {
            if let Ok(n) = v.parse::<u64>() {
                Ok(n)
            } else if let Some(&c) = labels.get(v) {
                Ok(c)
            } else if v.is_empty() {
                Err("empty constant".to_string())
            } else {
                Err(format!("label {v} does not occur in the database file"))
            }
        })
        .collect();
    Ok((rel.to_string(), values?))
}

/// [`resolve_fact`] + tuple lookup in a store: the id of the referenced
/// tuple, or an error naming the missing fact.
pub fn lookup_fact<S: TupleStore + ?Sized>(
    q: &Query,
    labels: &HashMap<String, u64>,
    db: &S,
    fact: &str,
) -> Result<TupleId, String> {
    let (rel, values) = resolve_fact(q, labels, fact)?;
    let rel_id = db
        .schema()
        .relation_id(&rel)
        .ok_or_else(|| format!("relation {rel} not in the instance"))?;
    let consts: Vec<database::Constant> = values.iter().map(|&v| v.into()).collect();
    db.lookup_values(rel_id, &consts)
        .ok_or_else(|| format!("no such tuple {rel}{values:?}"))
}

/// Renders a store back into the textual format (one fact per line, grouped
/// by relation in schema order, insertion order within a relation). Parsing
/// the result with [`parse_database`] reproduces the tuples; it is how thin
/// clients upload a local instance to the daemon.
pub fn to_text<S: TupleStore + ?Sized>(db: &S) -> String {
    let mut out = String::new();
    for rel in db.schema().relation_ids() {
        let name = db.schema().name(rel);
        for &t in db.tuples_of(rel) {
            let vals: Vec<String> = db.values_of(t).iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("{name}({})\n", vals.join(",")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    #[test]
    fn labels_do_not_collide_with_large_numeric_constants() {
        // Regression (from rescli): a fixed label-interning base aliased
        // explicit constants ≥ 1,000,000.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let text = "R(1000001, 7)\nR(alpha, 7)\nR(7, 9)\n";
        let db = parse_database(&q, text).unwrap();
        assert_eq!(db.num_tuples(), 3, "label collided with numeric constant");
    }

    #[test]
    fn labels_are_offset_past_the_input_maximum() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "R(42, alpha)\nR(7, beta)\n").unwrap();
        let r = db.schema().relation_id("R").unwrap();
        assert!(db.contains(r, &[42u64, 43]));
        assert!(db.contains(r, &[7u64, 44]));
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let q = parse_query("R(x,y)").unwrap();
        assert!(parse_database(&q, "R(1, 2\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_database(&q, "# ok\nZ(1, 2)\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_database(&q, "R(1, )\n")
            .unwrap_err()
            .contains("empty"));
        assert!(parse_database(&q, "R)2(\n").unwrap_err().contains("line 1"));
    }

    #[test]
    fn resolve_and_lookup_facts_match_the_loader() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let (db, labels) = parse_database_with_labels(&q, "R(a,b)\nR(b,c)\nR(7,9)\n").unwrap();
        let frozen = db.freeze();
        let t = lookup_fact(&q, &labels, &frozen, "R(a,b)").unwrap();
        assert_eq!(frozen.values_of(t), db.values_of(t));
        assert!(lookup_fact(&q, &labels, &frozen, "R(zz,b)")
            .unwrap_err()
            .contains("label zz"));
        assert!(lookup_fact(&q, &labels, &frozen, "Z(1,2)")
            .unwrap_err()
            .contains("relation Z"));
        assert!(lookup_fact(&q, &labels, &frozen, "R(9,7)")
            .unwrap_err()
            .contains("no such tuple"));
    }

    #[test]
    fn to_text_round_trips_through_the_parser() {
        let q = parse_query("A(x), R(x,y)").unwrap();
        let (db, _) = parse_database_with_labels(&q, "A(1)\nR(1,2)\nR(2,3)\nA(4)\n").unwrap();
        let text = to_text(&db);
        let re = parse_database(&q, &text).unwrap();
        assert_eq!(re.num_tuples(), db.num_tuples());
        for rel in db.schema().relation_ids() {
            let vals = |store: &Database, t: TupleId| -> Vec<u64> {
                store.values_of(t).iter().map(|c| c.0).collect()
            };
            let mut a: Vec<Vec<u64>> = db.tuples_of(rel).iter().map(|&t| vals(&db, t)).collect();
            let mut b: Vec<Vec<u64>> = re.tuples_of(rel).iter().map(|&t| vals(&re, t)).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }
}
