//! Tenant-aware registry: per-tenant namespaces, quotas, LRU eviction and
//! cross-connection sessions.
//!
//! A *tenant* is whatever presents the same `auth` token; requests without
//! an `auth` field share the default (anonymous) tenant, so a single-user
//! deployment behaves exactly as before. Each tenant owns its own namespace
//! of compiled queries, frozen instances and open sessions — ids are scoped
//! per tenant, so two tenants' `q0`s never collide — plus a byte ledger of
//! the frozen instances it keeps resident.
//!
//! Quotas bound what any one tenant can pin ([`TenantQuotas`]):
//!
//! * `max_compiled_queries` / `max_frozen_instances` — registry entry
//!   counts. Exceeding them does **not** fail the insert: the least
//!   recently *used* entry is evicted instead (its id answers
//!   `unknown_handle` afterwards), so a well-behaved client that forgets to
//!   `unload` is bounded by policy, not by its own discipline.
//! * `max_resident_bytes` — the sum of [`FrozenDb::resident_bytes`]
//!   estimates over the tenant's instances. Inserting evicts LRU instances
//!   until the ledger fits; an instance whose *own* estimate exceeds the
//!   budget is refused outright with `quota_exceeded`.
//! * `max_open_sessions` — a hard limit: sessions carry client-visible
//!   mutation state, so silently evicting one would corrupt a replay.
//!   Opening one past the limit answers `quota_exceeded` naming the limit.
//!
//! Handles are looked up in the caller's own namespace first; on a miss the
//! other namespaces are scanned so the error can distinguish *someone
//! else's handle* (`unauthorized`) from *nobody's handle*
//! (`unknown_handle`) — the distinction the tenancy tests pin down.
//!
//! Sessions are addressable two ways: by `session_id` within the owning
//! tenant, or by the opaque `token` the `session` response returns — the
//! token routes from **any** connection (reconnects, load-balanced pools),
//! but only under the owning tenant's `auth`; any other tenant presenting
//! it gets `unauthorized`. Sessions idle past the server's TTL are reaped
//! by the event loop's housekeeping tick (a session mid-solve holds its
//! slot lock and is never reaped).
//!
//! [`FrozenDb::resident_bytes`]: database::FrozenDb::resident_bytes

use crate::jsonio::TenancyStats;
use crate::{DbEntry, QueryEntry, SessionEntry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, TryLockError};
use std::time::Duration;

/// Per-tenant resource quotas. The defaults are deliberately generous — a
/// single-tenant deployment should never notice them — while still bounding
/// a hostile or leaky client.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuotas {
    /// Registry entries of compiled queries; the LRU entry is evicted when
    /// a `compile` would exceed it. Clamped to at least 1.
    pub max_compiled_queries: usize,
    /// Registry entries of frozen instances; LRU-evicted like queries.
    /// Clamped to at least 1.
    pub max_frozen_instances: usize,
    /// Open sessions; a `session` past this limit is refused with
    /// `quota_exceeded` (sessions hold replayable state, so eviction is
    /// never silent).
    pub max_open_sessions: usize,
    /// Byte budget over the tenant's frozen instances, estimated from their
    /// CSR arena lengths. Loads evict LRU instances to fit; a single
    /// instance larger than the whole budget is refused.
    pub max_resident_bytes: usize,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas {
            max_compiled_queries: 1024,
            max_frozen_instances: 1024,
            max_open_sessions: 256,
            max_resident_bytes: 1 << 30,
        }
    }
}

/// Why a handle lookup failed.
pub(crate) enum LookupError {
    /// No tenant has the id.
    Unknown,
    /// Another tenant has the id — answered as `unauthorized`, never by
    /// serving someone else's data.
    Foreign,
}

/// A quota refusal: which limit, and its configured maximum (both rendered
/// into the `quota_exceeded` response).
pub(crate) struct QuotaError {
    pub(crate) limit: &'static str,
    pub(crate) max: usize,
}

/// One tenant's registry of compiled queries and frozen instances, plus the
/// auto-id counters and the resident-byte ledger.
#[derive(Default)]
pub(crate) struct TenantRegistry {
    pub(crate) queries: HashMap<String, Arc<QueryEntry>>,
    pub(crate) dbs: HashMap<String, Arc<DbEntry>>,
    next_query: u64,
    next_db: u64,
    pub(crate) resident_bytes: usize,
}

impl TenantRegistry {
    /// Next unused auto-generated query id. Skips ids a client registered
    /// explicitly — an auto id must never silently replace someone else's
    /// entry.
    pub(crate) fn next_query_id(&mut self) -> String {
        loop {
            let id = format!("q{}", self.next_query);
            self.next_query += 1;
            if !self.queries.contains_key(&id) {
                return id;
            }
        }
    }

    /// Next unused auto-generated database id (same skip rule as
    /// [`TenantRegistry::next_query_id`]).
    pub(crate) fn next_db_id(&mut self) -> String {
        loop {
            let id = format!("d{}", self.next_db);
            self.next_db += 1;
            if !self.dbs.contains_key(&id) {
                return id;
            }
        }
    }

    /// Removes and returns the least recently used query entry's id.
    fn evict_lru_query(&mut self) -> Option<String> {
        let id = self
            .queries
            .iter()
            .min_by_key(|(_, e)| e.lru.load(Ordering::Relaxed))
            .map(|(id, _)| id.clone())?;
        self.queries.remove(&id);
        Some(id)
    }

    /// Removes and returns the least recently used instance's id, keeping
    /// the byte ledger consistent.
    fn evict_lru_db(&mut self) -> Option<String> {
        let id = self
            .dbs
            .iter()
            .min_by_key(|(_, e)| e.lru.load(Ordering::Relaxed))
            .map(|(id, _)| id.clone())?;
        if let Some(entry) = self.dbs.remove(&id) {
            self.resident_bytes = self.resident_bytes.saturating_sub(entry.bytes);
        }
        Some(id)
    }
}

/// One session slot: the shared entry (locked for the duration of each
/// request that uses it) and the routing token minted at open.
pub(crate) struct SessionSlot {
    pub(crate) entry: Arc<Mutex<SessionEntry>>,
    pub(crate) token: String,
}

/// A tenant's open sessions plus the auto-id counter (skip rule as for
/// registry ids).
#[derive(Default)]
pub(crate) struct SessionTable {
    pub(crate) slots: HashMap<String, SessionSlot>,
    next: u64,
}

impl SessionTable {
    fn next_session_id(&mut self) -> String {
        loop {
            let id = format!("s{}", self.next);
            self.next += 1;
            if !self.slots.contains_key(&id) {
                return id;
            }
        }
    }
}

/// One tenant: its registry and its sessions.
#[derive(Default)]
pub(crate) struct Tenant {
    pub(crate) registry: RwLock<TenantRegistry>,
    pub(crate) sessions: Mutex<SessionTable>,
}

/// The full tenant map plus the policy and the global token index. Lock
/// order, where nested: `tenants` → a tenant's `registry`/`sessions` →
/// `tokens`; token *resolution* copies out of `tokens` before touching any
/// session table, so no path acquires them in the opposite order.
pub(crate) struct Tenancy {
    pub(crate) quotas: TenantQuotas,
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// Session token → (tenant key, session id).
    tokens: Mutex<HashMap<String, (String, String)>>,
    /// Logical LRU clock: bumped on every registry touch.
    clock: AtomicU64,
    /// Token mint counter (mixed through splitmix64).
    token_seq: AtomicU64,
    pub(crate) evicted_queries: AtomicU64,
    pub(crate) evicted_dbs: AtomicU64,
    pub(crate) reaped_sessions: AtomicU64,
}

// All lock poisoning in this module is recovered, not propagated: the maps
// are only mutated through insert/remove (never left half-written), and one
// panicking request must not brick every later request.
fn read_reg(t: &Tenant) -> std::sync::RwLockReadGuard<'_, TenantRegistry> {
    t.registry.read().unwrap_or_else(|e| e.into_inner())
}

fn write_reg(t: &Tenant) -> std::sync::RwLockWriteGuard<'_, TenantRegistry> {
    t.registry.write().unwrap_or_else(|e| e.into_inner())
}

fn lock_sessions(t: &Tenant) -> std::sync::MutexGuard<'_, SessionTable> {
    t.sessions.lock().unwrap_or_else(|e| e.into_inner())
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Tenancy {
    pub(crate) fn new(quotas: TenantQuotas) -> Tenancy {
        // Zero-sized quotas would force insert-then-evict-self loops; a
        // quota of "nothing" is spelled by not issuing the tenant an auth
        // token at all.
        let quotas = TenantQuotas {
            max_compiled_queries: quotas.max_compiled_queries.max(1),
            max_frozen_instances: quotas.max_frozen_instances.max(1),
            max_open_sessions: quotas.max_open_sessions.max(1),
            max_resident_bytes: quotas.max_resident_bytes.max(1),
        };
        Tenancy {
            quotas,
            tenants: RwLock::new(HashMap::new()),
            tokens: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            // The address of the boxed state seeds the token stream so two
            // daemon runs do not mint the same sequence; tokens are routing
            // handles (the `auth` token is the authorization boundary), so
            // this does not need to be cryptographic.
            token_seq: AtomicU64::new(0),
            evicted_queries: AtomicU64::new(0),
            evicted_dbs: AtomicU64::new(0),
            reaped_sessions: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The tenant for an `auth` token, created on first sight. An absent
    /// `auth` maps to the `""` key — the shared anonymous tenant.
    pub(crate) fn tenant(&self, auth: &str) -> Arc<Tenant> {
        if let Some(t) = self
            .tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(auth)
        {
            return Arc::clone(t);
        }
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(auth.to_string()).or_default())
    }

    fn existing_tenant(&self, auth: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(auth)
            .cloned()
    }

    /// Whether any *other* tenant holds the id (for the
    /// `unauthorized`-vs-`unknown_handle` distinction).
    fn held_elsewhere(&self, auth: &str, probe: impl Fn(&Tenant) -> bool) -> bool {
        let tenants = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        tenants
            .iter()
            .any(|(key, t)| key != auth && probe(t.as_ref()))
    }

    /// Looks up a compiled query in the caller's namespace, bumping its LRU
    /// stamp.
    pub(crate) fn lookup_query(
        &self,
        auth: &str,
        id: &str,
    ) -> Result<Arc<QueryEntry>, LookupError> {
        if let Some(t) = self.existing_tenant(auth) {
            if let Some(e) = read_reg(&t).queries.get(id) {
                e.lru.store(self.tick(), Ordering::Relaxed);
                return Ok(Arc::clone(e));
            }
        }
        if self.held_elsewhere(auth, |t| read_reg(t).queries.contains_key(id)) {
            Err(LookupError::Foreign)
        } else {
            Err(LookupError::Unknown)
        }
    }

    /// Looks up a frozen instance in the caller's namespace, bumping its
    /// LRU stamp.
    pub(crate) fn lookup_db(&self, auth: &str, id: &str) -> Result<Arc<DbEntry>, LookupError> {
        if let Some(t) = self.existing_tenant(auth) {
            if let Some(e) = read_reg(&t).dbs.get(id) {
                e.lru.store(self.tick(), Ordering::Relaxed);
                return Ok(Arc::clone(e));
            }
        }
        if self.held_elsewhere(auth, |t| read_reg(t).dbs.contains_key(id)) {
            Err(LookupError::Foreign)
        } else {
            Err(LookupError::Unknown)
        }
    }

    /// Registers a compiled query (explicit id replaces; auto id from the
    /// tenant's counter), evicting the tenant's LRU queries past the quota.
    pub(crate) fn insert_query(
        &self,
        tenant: &Tenant,
        explicit: Option<&str>,
        entry: QueryEntry,
    ) -> String {
        entry.lru.store(self.tick(), Ordering::Relaxed);
        let mut reg = write_reg(tenant);
        let id = match explicit {
            Some(id) => id.to_string(),
            None => reg.next_query_id(),
        };
        // Re-registering an id replaces the entry (idempotent clients).
        reg.queries.insert(id.clone(), Arc::new(entry));
        while reg.queries.len() > self.quotas.max_compiled_queries {
            match reg.evict_lru_query() {
                Some(_) => {
                    self.evicted_queries.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        id
    }

    /// Registers a frozen instance, evicting the tenant's LRU instances
    /// until both the count and the byte quotas fit. An instance whose own
    /// estimate exceeds the whole byte budget is refused.
    pub(crate) fn insert_db(
        &self,
        tenant: &Tenant,
        explicit: Option<&str>,
        mut entry: DbEntry,
    ) -> Result<String, QuotaError> {
        if entry.bytes > self.quotas.max_resident_bytes {
            return Err(QuotaError {
                limit: "max_resident_bytes",
                max: self.quotas.max_resident_bytes,
            });
        }
        entry.lru.store(self.tick(), Ordering::Relaxed);
        let mut reg = write_reg(tenant);
        let id = match explicit {
            Some(id) => id.to_string(),
            None => reg.next_db_id(),
        };
        entry.id = id.clone();
        let bytes = entry.bytes;
        if let Some(old) = reg.dbs.insert(id.clone(), Arc::new(entry)) {
            reg.resident_bytes = reg.resident_bytes.saturating_sub(old.bytes);
        }
        reg.resident_bytes += bytes;
        while reg.dbs.len() > self.quotas.max_frozen_instances
            || reg.resident_bytes > self.quotas.max_resident_bytes
        {
            // The entry just inserted is the newest (highest LRU stamp) and
            // fits the budget alone, so the loop always terminates before
            // evicting it.
            if reg.dbs.len() <= 1 {
                break;
            }
            match reg.evict_lru_db() {
                Some(_) => {
                    self.evicted_dbs.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        Ok(id)
    }

    fn mint_token(&self) -> String {
        let seq = self.token_seq.fetch_add(1, Ordering::Relaxed);
        let seed = seq
            .wrapping_add((self as *const Tenancy as usize as u64).rotate_left(17))
            .wrapping_add(
                std::time::SystemTime::UNIX_EPOCH
                    .elapsed()
                    .map(|d| d.subsec_nanos() as u64)
                    .unwrap_or(0)
                    << 20,
            );
        format!("tk{:016x}", splitmix64(seed))
    }

    /// Opens a session slot under the tenant, minting its routing token.
    /// Returns `(session_id, token)`. An explicit id replaces any previous
    /// slot of the same name (its token is retired); a *new* slot past the
    /// session quota is refused.
    pub(crate) fn open_session(
        &self,
        auth: &str,
        tenant: &Tenant,
        explicit: Option<&str>,
        entry: SessionEntry,
    ) -> Result<(String, String), QuotaError> {
        let mut table = lock_sessions(tenant);
        let id = match explicit {
            Some(id) => id.to_string(),
            None => table.next_session_id(),
        };
        if !table.slots.contains_key(&id) && table.slots.len() >= self.quotas.max_open_sessions {
            return Err(QuotaError {
                limit: "max_open_sessions",
                max: self.quotas.max_open_sessions,
            });
        }
        let token = loop {
            let token = self.mint_token();
            let mut tokens = self.tokens.lock().unwrap_or_else(|e| e.into_inner());
            if tokens.contains_key(&token) {
                continue;
            }
            tokens.insert(token.clone(), (auth.to_string(), id.clone()));
            break token;
        };
        if let Some(old) = table.slots.insert(
            id.clone(),
            SessionSlot {
                entry: Arc::new(Mutex::new(entry)),
                token: token.clone(),
            },
        ) {
            self.tokens
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&old.token);
        }
        Ok((id, token))
    }

    /// Resolves a session by token (any connection, owning tenant only) or
    /// by `session_id` within the caller's namespace.
    pub(crate) fn resolve_session(
        &self,
        auth: &str,
        session_id: Option<&str>,
        token: Option<&str>,
    ) -> Result<Arc<Mutex<SessionEntry>>, LookupError> {
        if let Some(token) = token {
            // Copy the route out before touching any session table — the
            // lock order is tenant locks before `tokens`, never the
            // reverse.
            let route = self
                .tokens
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(token)
                .cloned();
            let (owner, sid) = match route {
                Some(route) => route,
                None => return Err(LookupError::Unknown),
            };
            if owner != auth {
                return Err(LookupError::Foreign);
            }
            let tenant = self.existing_tenant(&owner).ok_or(LookupError::Unknown)?;
            let table = lock_sessions(&tenant);
            return table
                .slots
                .get(&sid)
                .map(|slot| Arc::clone(&slot.entry))
                .ok_or(LookupError::Unknown);
        }
        let id = match session_id {
            Some(id) => id,
            None => return Err(LookupError::Unknown),
        };
        if let Some(t) = self.existing_tenant(auth) {
            if let Some(slot) = lock_sessions(&t).slots.get(id) {
                return Ok(Arc::clone(&slot.entry));
            }
        }
        if self.held_elsewhere(auth, |t| lock_sessions(t).slots.contains_key(id)) {
            Err(LookupError::Foreign)
        } else {
            Err(LookupError::Unknown)
        }
    }

    /// Closes a session in the caller's namespace, retiring its token.
    pub(crate) fn close_session(&self, auth: &str, id: &str) -> Result<(), LookupError> {
        if let Some(t) = self.existing_tenant(auth) {
            let removed = lock_sessions(&t).slots.remove(id);
            if let Some(slot) = removed {
                self.tokens
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&slot.token);
                return Ok(());
            }
        }
        if self.held_elsewhere(auth, |t| lock_sessions(t).slots.contains_key(id)) {
            Err(LookupError::Foreign)
        } else {
            Err(LookupError::Unknown)
        }
    }

    /// Reaps sessions idle past `ttl` (the event loop's housekeeping tick).
    /// A session mid-request holds its slot lock and is skipped — activity,
    /// not a leak.
    pub(crate) fn reap_expired(&self, ttl: Duration) {
        let tenants: Vec<Arc<Tenant>> = self
            .tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect();
        for tenant in tenants {
            let mut table = lock_sessions(&tenant);
            let expired: Vec<String> = table
                .slots
                .iter()
                .filter_map(|(id, slot)| {
                    let idle = match slot.entry.try_lock() {
                        Ok(e) => e.session.idle_for(),
                        Err(TryLockError::Poisoned(e)) => e.into_inner().session.idle_for(),
                        Err(TryLockError::WouldBlock) => return None,
                    };
                    (idle > ttl).then(|| id.clone())
                })
                .collect();
            for id in expired {
                if let Some(slot) = table.slots.remove(&id) {
                    self.tokens
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&slot.token);
                    self.reaped_sessions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Removes a query and/or db from the caller's namespace; both are
    /// validated before either is removed (an error response must mean
    /// nothing was unloaded). Returns the removed ids in argument order.
    pub(crate) fn unload(
        &self,
        auth: &str,
        qid: Option<&str>,
        did: Option<&str>,
    ) -> Result<Vec<String>, (LookupError, String)> {
        let tenant = self.existing_tenant(auth);
        if let Some(id) = qid {
            let have = tenant
                .as_deref()
                .is_some_and(|t| read_reg(t).queries.contains_key(id));
            if !have {
                let e = if self.held_elsewhere(auth, |t| read_reg(t).queries.contains_key(id)) {
                    LookupError::Foreign
                } else {
                    LookupError::Unknown
                };
                return Err((e, format!("query_id {id}")));
            }
        }
        if let Some(id) = did {
            let have = tenant
                .as_deref()
                .is_some_and(|t| read_reg(t).dbs.contains_key(id));
            if !have {
                let e = if self.held_elsewhere(auth, |t| read_reg(t).dbs.contains_key(id)) {
                    LookupError::Foreign
                } else {
                    LookupError::Unknown
                };
                return Err((e, format!("db_id {id}")));
            }
        }
        let tenant = tenant.expect("validated handles imply the tenant exists");
        let mut reg = write_reg(&tenant);
        let mut unloaded = Vec::new();
        if let Some(id) = qid {
            if reg.queries.remove(id).is_some() {
                unloaded.push(id.to_string());
            }
        }
        if let Some(id) = did {
            if let Some(entry) = reg.dbs.remove(id) {
                reg.resident_bytes = reg.resident_bytes.saturating_sub(entry.bytes);
                unloaded.push(id.to_string());
            }
        }
        Ok(unloaded)
    }

    /// Aggregate counters for the `stats` verb.
    pub(crate) fn stats_snapshot(&self) -> TenancyStats {
        let tenants = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        let mut snap = TenancyStats {
            tenants: tenants.len() as u64,
            ..TenancyStats::default()
        };
        for tenant in tenants.values() {
            let reg = read_reg(tenant);
            snap.queries += reg.queries.len() as u64;
            snap.dbs += reg.dbs.len() as u64;
            snap.resident_bytes += reg.resident_bytes as u64;
            snap.sessions += lock_sessions(tenant).slots.len() as u64;
        }
        snap.evicted_queries = self.evicted_queries.load(Ordering::Relaxed);
        snap.evicted_dbs = self.evicted_dbs.load(Ordering::Relaxed);
        snap.reaped_sessions = self.reaped_sessions.load(Ordering::Relaxed);
        snap
    }
}
