//! A thin blocking client for the `resd` protocol, shared by
//! `rescli remote`, `perfbench serve` and the differential test suite.
//!
//! Requests and responses are single lines; [`Client::request`] returns both
//! the parsed value and the **raw response text**, because the thin clients
//! re-emit server-rendered report/event objects verbatim (see
//! [`jsonio::extract_raw`]) to keep remote output byte-identical to local
//! output.

use crate::jsonio::{self, JsonValue};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Retry behaviour of [`Client::request`]: how many times to retry a
/// *retryable* failure — an `overloaded` refusal or a transient transport
/// error — and with what exponential backoff. Only refusals the server
/// explicitly marks retryable and connection-level failures are retried;
/// logical errors (`bad_request`, `budget_exhausted`, `cancelled`, ...)
/// never are. Two safety rules bound what a retry may do:
///
/// * An `overloaded` refusal is an explicit promise the request was never
///   admitted, so it is retried whatever the verb.
/// * A transport failure mid-request is **ambiguous** — the request may or
///   may not have executed before the connection died. Only idempotent
///   verbs (re-executing observes the same state: `ping`, `compile`,
///   `load`, `solve`, `batch`, `session`, `reset`, `resolve`,
///   `batch_whatif`, `stats`) are retried then; the non-idempotent session
///   mutations (`delete`, `restore`, `close` — and `unload`/`shutdown`)
///   surface the ambiguity as an `ambiguous: ...` error instead, so a
///   replay-driving client can reconcile state (e.g. via the `deleted`
///   echo) rather than silently double-apply a mutation.
///
/// Retrying reconnects; sessions survive that (they live server-side,
/// addressable by `session_id` under the same `auth` or by their `token`),
/// so sessionful flows may keep retry enabled throughout.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = fail fast).
    pub attempts: u32,
    /// First backoff delay; doubles per retry.
    pub base_delay_ms: u64,
    /// Backoff ceiling. An `overloaded` refusal's `retry_after_ms` hint
    /// overrides the computed backoff when present.
    pub max_delay_ms: u64,
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately (the default).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 0,
            base_delay_ms: 0,
            max_delay_ms: 0,
        }
    }

    /// The policy `rescli remote` uses: 5 retries, 25 ms doubling to 1 s.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base_delay_ms: 25,
            max_delay_ms: 1_000,
        }
    }

    fn backoff_ms(&self, retry: u32) -> u64 {
        let shift = retry.min(16);
        self.base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms)
    }
}

/// How one failed request should be handled.
struct RequestFailure {
    message: String,
    /// Retryable means the failure class can be retried at all (the
    /// connection may be gone, so retry always reconnects).
    retryable: bool,
    /// Whether the request may have executed before the failure: `false`
    /// for `overloaded` refusals (an explicit not-admitted promise),
    /// `true` for transport failures mid-request. Ambiguous failures are
    /// only retried for idempotent verbs.
    ambiguous: bool,
    /// The server's `retry_after_ms` hint, when it sent one.
    retry_after_ms: Option<u64>,
}

impl RequestFailure {
    fn fatal(message: String) -> RequestFailure {
        RequestFailure {
            message,
            retryable: false,
            ambiguous: false,
            retry_after_ms: None,
        }
    }

    fn transient(message: String) -> RequestFailure {
        RequestFailure {
            message,
            retryable: true,
            ambiguous: true,
            retry_after_ms: None,
        }
    }
}

/// The verbs a transport failure may safely re-execute: re-running them
/// observes the same server state the first execution would have (absolute
/// state, pure reads, or register-by-id replacement). Everything else —
/// notably the incremental session mutations `delete`/`restore` and the
/// handle-consuming `close`/`unload`/`shutdown` — is not on the list.
const IDEMPOTENT_VERBS: &[&str] = &[
    "ping",
    "compile",
    "load",
    "freeze",
    "solve",
    "batch",
    "session",
    "reset",
    "resolve",
    "batch_whatif",
    "stats",
];

/// Extracts the request's verb and whether it is idempotent. Unparseable
/// requests classify as non-idempotent: when the client cannot tell what
/// it sent, it must not guess that re-sending is safe.
fn classify_op(line: &str) -> (String, bool) {
    let op = jsonio::parse_json(line.trim())
        .ok()
        .and_then(|v| v.get("op").and_then(JsonValue::as_str).map(str::to_string))
        .unwrap_or_else(|| "unknown".to_string());
    let idempotent = IDEMPOTENT_VERBS.contains(&op.as_str());
    (op, idempotent)
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    /// Address to reconnect to on retry; `None` disables reconnection (and
    /// therefore retry of transport failures).
    addr: Option<String>,
    policy: RetryPolicy,
}

impl Client {
    /// Connects to a running daemon (no retries — see
    /// [`Client::connect_retrying`]).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            reader: BufReader::new(stream),
            addr: None,
            policy: RetryPolicy::none(),
        })
    }

    /// Connects with a retry policy: the initial connect and every
    /// retryable request failure are retried with exponential backoff,
    /// reconnecting as needed.
    pub fn connect_retrying(addr: &str, policy: RetryPolicy) -> io::Result<Client> {
        let mut last_err = None;
        for retry in 0..=policy.attempts {
            if retry > 0 {
                std::thread::sleep(Duration::from_millis(policy.backoff_ms(retry)));
            }
            match Client::connect(addr) {
                Ok(mut client) => {
                    client.addr = Some(addr.to_string());
                    client.policy = policy;
                    return Ok(client);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one connect attempt"))
    }

    fn reconnect(&mut self) -> Result<(), String> {
        let addr = self
            .addr
            .as_ref()
            .ok_or("connection lost (no retry address)")?;
        let stream = TcpStream::connect(addr).map_err(|e| format!("reconnect failed: {e}"))?;
        let _ = stream.set_nodelay(true);
        self.reader = BufReader::new(stream);
        Ok(())
    }

    /// Sends one request line and reads one response line (raw). No
    /// retries at this layer — retry needs the parsed error kind, so it
    /// lives in [`Client::request`].
    pub fn request_raw(&mut self, line: &str) -> Result<String, String> {
        let stream = self.reader.get_mut();
        stream
            .write_all(line.as_bytes())
            .and_then(|_| stream.write_all(b"\n"))
            .and_then(|_| stream.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| format!("receive failed: {e}"))?;
        if response.is_empty() {
            return Err("connection closed by server".to_string());
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    fn request_once(&mut self, line: &str) -> Result<(JsonValue, String), RequestFailure> {
        let raw = match self.request_raw(line) {
            Ok(raw) => raw,
            Err(e) => return Err(RequestFailure::transient(e)),
        };
        let value = match jsonio::parse_json(&raw) {
            Ok(value) => value,
            Err(e) => return Err(RequestFailure::fatal(format!("malformed response: {e}"))),
        };
        match value.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => Ok((value, raw)),
            Some(false) => {
                let message = value
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown server error")
                    .to_string();
                if value.get("kind").and_then(JsonValue::as_str) == Some("overloaded") {
                    Err(RequestFailure {
                        message,
                        retryable: true,
                        // A refusal proves the request was never admitted.
                        ambiguous: false,
                        retry_after_ms: value
                            .get("retry_after_ms")
                            .and_then(JsonValue::as_usize)
                            .map(|ms| ms as u64),
                    })
                } else {
                    Err(RequestFailure::fatal(message))
                }
            }
            None => Err(RequestFailure::fatal(format!(
                "response missing ok field: {raw}"
            ))),
        }
    }

    /// [`Client::request_raw`] + parse + `ok` check: `Err` carries the
    /// server's `error` text (or a transport/parse error). Under a retry
    /// policy ([`Client::connect_retrying`]), `overloaded` refusals and
    /// transport failures are retried with exponential backoff (honouring
    /// the server's `retry_after_ms` hint), reconnecting each time —
    /// except that a transport failure on a non-idempotent verb
    /// (`delete`/`restore`/`close`/`unload`/`shutdown`) is never retried:
    /// the request may already have executed, so the ambiguity surfaces as
    /// an `ambiguous: ...` error instead (see [`RetryPolicy`]).
    pub fn request(&mut self, line: &str) -> Result<(JsonValue, String), String> {
        let (op, idempotent) = classify_op(line);
        let mut retry = 0u32;
        loop {
            match self.request_once(line) {
                Ok(ok) => return Ok(ok),
                Err(failure) => {
                    if failure.retryable && failure.ambiguous && !idempotent {
                        return Err(format!(
                            "ambiguous: transport failed mid-request ({}); \
                             op \"{op}\" is not idempotent and was not retried — \
                             it may or may not have executed on the server",
                            failure.message
                        ));
                    }
                    let can_retry =
                        failure.retryable && retry < self.policy.attempts && self.addr.is_some();
                    if !can_retry {
                        return Err(failure.message);
                    }
                    retry += 1;
                    let delay_ms = failure
                        .retry_after_ms
                        .unwrap_or_else(|| self.policy.backoff_ms(retry));
                    std::thread::sleep(Duration::from_millis(delay_ms));
                    // The connection is gone in every retryable case;
                    // failure to re-establish it consumes further retries.
                    if let Err(e) = self.reconnect() {
                        if retry >= self.policy.attempts {
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Registers a query; returns `(query_id, query_display, complexity)`.
    pub fn compile(&mut self, query_text: &str) -> Result<(String, String, String), String> {
        let (v, _) = self.request(&format!(
            "{{\"op\": \"compile\", \"query\": \"{}\"}}",
            jsonio::json_escape(query_text)
        ))?;
        let field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("compile response missing {key}"))
        };
        Ok((field("query_id")?, field("query")?, field("complexity")?))
    }

    /// Uploads a database as inline text; returns `(db_id, tuples)`.
    pub fn load_text(&mut self, query_id: &str, text: &str) -> Result<(String, usize), String> {
        let (v, _) = self.request(&format!(
            "{{\"op\": \"load\", \"query_id\": \"{}\", \"text\": \"{}\"}}",
            jsonio::json_escape(query_id),
            jsonio::json_escape(text)
        ))?;
        let id = v
            .get("db_id")
            .and_then(JsonValue::as_str)
            .ok_or("load response missing db_id")?
            .to_string();
        let tuples = v
            .get("tuples")
            .and_then(JsonValue::as_usize)
            .ok_or("load response missing tuples")?;
        Ok((id, tuples))
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request("{\"op\": \"shutdown\"}").map(|_| ())
    }
}
