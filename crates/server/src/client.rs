//! A thin blocking client for the `resd` protocol, shared by
//! `rescli remote`, `perfbench serve` and the differential test suite.
//!
//! Requests and responses are single lines; [`Client::request`] returns both
//! the parsed value and the **raw response text**, because the thin clients
//! re-emit server-rendered report/event objects verbatim (see
//! [`jsonio::extract_raw`]) to keep remote output byte-identical to local
//! output.

use crate::jsonio::{self, JsonValue};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and reads one response line (raw).
    pub fn request_raw(&mut self, line: &str) -> Result<String, String> {
        let stream = self.reader.get_mut();
        stream
            .write_all(line.as_bytes())
            .and_then(|_| stream.write_all(b"\n"))
            .and_then(|_| stream.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| format!("receive failed: {e}"))?;
        if response.is_empty() {
            return Err("connection closed by server".to_string());
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// [`Client::request_raw`] + parse + `ok` check: `Err` carries the
    /// server's `error` text (or a transport/parse error).
    pub fn request(&mut self, line: &str) -> Result<(JsonValue, String), String> {
        let raw = self.request_raw(line)?;
        let value = jsonio::parse_json(&raw).map_err(|e| format!("malformed response: {e}"))?;
        match value.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => Ok((value, raw)),
            Some(false) => Err(value
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown server error")
                .to_string()),
            None => Err(format!("response missing ok field: {raw}")),
        }
    }

    /// Registers a query; returns `(query_id, query_display, complexity)`.
    pub fn compile(&mut self, query_text: &str) -> Result<(String, String, String), String> {
        let (v, _) = self.request(&format!(
            "{{\"op\": \"compile\", \"query\": \"{}\"}}",
            jsonio::json_escape(query_text)
        ))?;
        let field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("compile response missing {key}"))
        };
        Ok((field("query_id")?, field("query")?, field("complexity")?))
    }

    /// Uploads a database as inline text; returns `(db_id, tuples)`.
    pub fn load_text(&mut self, query_id: &str, text: &str) -> Result<(String, usize), String> {
        let (v, _) = self.request(&format!(
            "{{\"op\": \"load\", \"query_id\": \"{}\", \"text\": \"{}\"}}",
            jsonio::json_escape(query_id),
            jsonio::json_escape(text)
        ))?;
        let id = v
            .get("db_id")
            .and_then(JsonValue::as_str)
            .ok_or("load response missing db_id")?
            .to_string();
        let tuples = v
            .get("tuples")
            .and_then(JsonValue::as_usize)
            .ok_or("load response missing tuples")?;
        Ok((id, tuples))
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request("{\"op\": \"shutdown\"}").map(|_| ())
    }
}
