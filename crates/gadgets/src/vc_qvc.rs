//! Proposition 9: Vertex Cover ≤ RES(q_vc).
//!
//! A directed-graph database for `q_vc :- R(x), S(x,y), R(y)` is built from
//! an undirected graph `G`: every vertex `v` becomes a tuple `R(v)` and every
//! edge `{u, v}` becomes a tuple `S(u, v)`. Then `G` has a vertex cover of
//! size `k` iff `(D_G, k) ∈ RES(q_vc)` — in fact the minimum vertex cover
//! size *equals* the resilience.

use cq::catalogue::q_vc;
use cq::Query;
use database::Database;
use satgad::UndirectedGraph;

/// The output of the reduction: the query, the constructed database, and the
/// threshold that makes the iff-statement true.
#[derive(Clone, Debug)]
pub struct VcGadget {
    /// The query `q_vc`.
    pub query: Query,
    /// The constructed database `D_G`.
    pub database: Database,
    /// Number of edges of the source graph (for reporting).
    pub num_edges: usize,
}

/// Builds the Proposition 9 database for a Vertex Cover instance.
pub fn vc_to_qvc(graph: &UndirectedGraph) -> VcGadget {
    let query = q_vc().query;
    let mut database = Database::for_query(&query);
    for v in 0..graph.num_vertices() {
        database.insert_named("R", &[v as u64]);
    }
    for (u, v) in graph.edges() {
        database.insert_named("S", &[u as u64, v as u64]);
    }
    VcGadget {
        query,
        database,
        num_edges: graph.num_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::ExactSolver;
    use satgad::min_vertex_cover_size;

    fn validate(graph: &UndirectedGraph) {
        let gadget = vc_to_qvc(graph);
        let vc = min_vertex_cover_size(graph);
        let resilience = ExactSolver::new()
            .resilience_value(&gadget.query, &gadget.database)
            .expect("finite resilience");
        assert_eq!(
            resilience, vc,
            "resilience must equal the minimum vertex cover size"
        );
        // Decision-version iff, for every k around the optimum.
        let solver = ExactSolver::new();
        for k in vc.saturating_sub(1)..=vc + 1 {
            let in_res =
                solver.decide(&gadget.query, &gadget.database, k) || graph.num_edges() == 0;
            let has_cover = k >= vc;
            if graph.num_edges() > 0 {
                assert_eq!(in_res, has_cover, "k = {k}");
            }
        }
    }

    #[test]
    fn cycle_graphs() {
        for n in 3..=8 {
            let mut g = UndirectedGraph::new(n);
            for i in 0..n {
                g.add_edge(i, (i + 1) % n);
            }
            validate(&g);
        }
    }

    #[test]
    fn complete_graphs() {
        for n in 2..=6 {
            let mut g = UndirectedGraph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    g.add_edge(i, j);
                }
            }
            validate(&g);
        }
    }

    #[test]
    fn star_and_path_graphs() {
        let mut star = UndirectedGraph::new(7);
        for leaf in 1..7 {
            star.add_edge(0, leaf);
        }
        validate(&star);

        let mut path = UndirectedGraph::new(9);
        for i in 0..8 {
            path.add_edge(i, i + 1);
        }
        validate(&path);
    }

    #[test]
    fn empty_graph_produces_false_query() {
        let g = UndirectedGraph::new(4);
        let gadget = vc_to_qvc(&g);
        assert_eq!(
            ExactSolver::new().resilience_value(&gadget.query, &gadget.database),
            Some(0)
        );
        assert_eq!(gadget.num_edges, 0);
    }
}
