//! Lemma 21: self-joins can only make resilience harder.
//!
//! Given a self-join-free query `q`, a minimal self-join variation `q_sj`
//! (some relations of `q` replaced by a repeated relation) and a database `D`
//! for `q`, the lemma builds a database `D'` for `q_sj` by *tagging every
//! constant with the variable position it instantiates*. The witnesses — and
//! therefore the contingency sets — of `(D, q)` and `(D', q_sj)` are in 1:1
//! correspondence, so the resiliences coincide.

use cq::Query;
use database::{witnesses, ConstPool, Database};

/// Output of the Lemma 21 tagging construction.
#[derive(Clone, Debug)]
pub struct TaggedVariation {
    /// The self-join variation query.
    pub query: Query,
    /// The constructed database `D'` with variable-tagged constants.
    pub database: Database,
    /// The constant pool mapping tagged constants back to readable labels.
    pub pool: ConstPool,
}

/// Builds `D'` from a database `D` of the self-join-free query `original`.
///
/// `variation` must have the same number of atoms as `original` with the same
/// argument lists (only relation names may differ); this mirrors
/// Definition 19's notion of a self-join variation.
///
/// # Panics
/// Panics if the two queries do not have matching atom structure.
pub fn tag_self_join_variation(
    original: &Query,
    variation: &Query,
    db: &Database,
) -> TaggedVariation {
    assert_eq!(
        original.num_atoms(),
        variation.num_atoms(),
        "a self-join variation has the same atoms as the original query"
    );
    for i in 0..original.num_atoms() {
        assert_eq!(
            original.atom(i).args,
            variation.atom(i).args,
            "atom #{i} must keep its argument list"
        );
    }
    let mut pool = ConstPool::new();
    let mut out = Database::for_query(variation);
    for w in witnesses(original, db) {
        for atom in variation.atoms() {
            let rel = out
                .schema()
                .relation_id(variation.schema().name(atom.relation))
                .expect("schema");
            let values: Vec<database::Constant> = atom
                .args
                .iter()
                .map(|v| {
                    let value = w.valuation[v.index()];
                    pool.intern(format!("{value}@{}", variation.var_name(*v)))
                })
                .collect();
            out.insert(rel, &values);
        }
    }
    TaggedVariation {
        query: variation.clone(),
        database: out,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangle::triangle_gadget_from_vc;
    use cq::parse_query;
    use resilience_core::ExactSolver;
    use satgad::UndirectedGraph;

    #[test]
    fn triangle_to_sj1_triangle_preserves_resilience() {
        // Build a triangle-query instance from a small VC graph, then tag it
        // into the all-R self-join variation q_sj1△ :- R(x,y), R(y,z), R(z,x).
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let triangle = triangle_gadget_from_vc(&g);
        let variation = parse_query("R(x,y), R(y,z), R(z,x)").unwrap();
        let tagged = tag_self_join_variation(&triangle.query, &variation, &triangle.database);
        let solver = ExactSolver::new();
        let rho_original = solver
            .resilience_value(&triangle.query, &triangle.database)
            .unwrap();
        let rho_variation = solver
            .resilience_value(&tagged.query, &tagged.database)
            .unwrap();
        assert_eq!(rho_original, rho_variation);
    }

    #[test]
    fn triangle_to_sj2_variation_preserves_resilience() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let triangle = triangle_gadget_from_vc(&g);
        let variation = parse_query("R(x,y), R(y,z), T(z,x)").unwrap();
        let tagged = tag_self_join_variation(&triangle.query, &variation, &triangle.database);
        let solver = ExactSolver::new();
        assert_eq!(
            solver.resilience_value(&triangle.query, &triangle.database),
            solver.resilience_value(&tagged.query, &tagged.database)
        );
    }

    #[test]
    fn tagged_witnesses_use_the_same_tuple_sets() {
        // The tagged database may have *more* witnesses than the original
        // (the all-R variation reads each original witness from three
        // starting atoms, as Lemma 50 notes), but every tagged witness uses
        // a tuple set that corresponds to an original witness, which is why
        // contingency sets are in 1:1 correspondence.
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let triangle = triangle_gadget_from_vc(&g);
        let variation = parse_query("R(x,y), R(y,z), R(z,x)").unwrap();
        let tagged = tag_self_join_variation(&triangle.query, &variation, &triangle.database);
        let original = witnesses(&triangle.query, &triangle.database).len();
        let tagged_count = witnesses(&tagged.query, &tagged.database).len();
        assert!(tagged_count >= original);
        assert!(tagged_count <= 3 * original);
    }

    #[test]
    fn simple_two_atom_variation() {
        // q :- R(x,y), S(y,z) tagged into q_chain :- R(x,y), R(y,z).
        let original = parse_query("R(x,y), S(y,z)").unwrap();
        let variation = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&original);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[4, 2]);
        db.insert_named("S", &[2, 3]);
        db.insert_named("S", &[2, 5]);
        let tagged = tag_self_join_variation(&original, &variation, &db);
        let solver = ExactSolver::new();
        assert_eq!(
            solver.resilience_value(&original, &db),
            solver.resilience_value(&tagged.query, &tagged.database)
        );
    }

    #[test]
    #[should_panic(expected = "same atoms")]
    fn mismatched_variation_is_rejected() {
        let original = parse_query("R(x,y), S(y,z)").unwrap();
        let variation = parse_query("R(x,y)").unwrap();
        let db = Database::for_query(&original);
        tag_self_join_variation(&original, &variation, &db);
    }
}
