//! Theorems 27 and 28: queries containing a unary or binary *path* between
//! self-join atoms are NP-complete, via reductions from Vertex Cover.
//!
//! The theorems apply to arbitrary ssj binary queries; this module
//! instantiates the constructions for the path queries the paper names —
//! the unary path query `q_vc` (Proposition 9, re-exported from
//! [`crate::vc_qvc`]) and the binary path queries `z1` and `z2` of Section
//! 7.4 — exactly as the Theorem 28 proof prescribes: vertices become
//! diagonal `R(a,a)` tuples and edges become `S(a,b)` tuples, so the
//! resilience of the constructed database equals the minimum vertex cover of
//! the source graph.

use cq::catalogue::{z1, z2};
use cq::Query;
use database::Database;
use satgad::UndirectedGraph;

/// Which binary path query to target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryPathTarget {
    /// `z1 :- R(x,x), S(x,y), R(y,y)`
    Z1,
    /// `z2 :- R(x,x), S(x,y), R(y,z)`
    Z2,
}

/// Output of the Vertex Cover → binary-path reduction.
#[derive(Clone, Debug)]
pub struct BinaryPathGadget {
    /// The target query (`z1` or `z2`).
    pub query: Query,
    /// The constructed database; its resilience equals the minimum vertex
    /// cover size of the source graph.
    pub database: Database,
}

/// Builds the Theorem 28 construction for `z1` or `z2`.
pub fn binary_path_gadget(graph: &UndirectedGraph, target: BinaryPathTarget) -> BinaryPathGadget {
    let query = match target {
        BinaryPathTarget::Z1 => z1().query,
        BinaryPathTarget::Z2 => z2().query,
    };
    let mut db = Database::for_query(&query);
    for v in 0..graph.num_vertices() {
        db.insert_named("R", &[v as u64, v as u64]);
    }
    for (u, v) in graph.edges() {
        db.insert_named("S", &[u as u64, v as u64]);
    }
    BinaryPathGadget {
        query,
        database: db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::ExactSolver;
    use satgad::min_vertex_cover_size;

    fn validate(graph: &UndirectedGraph, target: BinaryPathTarget) {
        let gadget = binary_path_gadget(graph, target);
        let vc = min_vertex_cover_size(graph);
        let resilience = ExactSolver::new()
            .resilience_value(&gadget.query, &gadget.database)
            .expect("finite");
        assert_eq!(resilience, vc, "{target:?}");
    }

    #[test]
    fn z1_reduction_matches_vertex_cover() {
        for n in 3..=7 {
            let mut cycle = UndirectedGraph::new(n);
            for i in 0..n {
                cycle.add_edge(i, (i + 1) % n);
            }
            validate(&cycle, BinaryPathTarget::Z1);
        }
    }

    #[test]
    fn z2_reduction_matches_vertex_cover() {
        let mut star = UndirectedGraph::new(6);
        for leaf in 1..6 {
            star.add_edge(0, leaf);
        }
        validate(&star, BinaryPathTarget::Z2);

        let mut complete = UndirectedGraph::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                complete.add_edge(i, j);
            }
        }
        validate(&complete, BinaryPathTarget::Z2);
    }

    #[test]
    fn empty_graph_has_zero_resilience() {
        let g = UndirectedGraph::new(3);
        let gadget = binary_path_gadget(&g, BinaryPathTarget::Z1);
        assert_eq!(
            ExactSolver::new().resilience_value(&gadget.query, &gadget.database),
            Some(0)
        );
    }

    #[test]
    fn gadget_shape_mirrors_the_proof() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let gadget = binary_path_gadget(&g, BinaryPathTarget::Z1);
        // All R-tuples are diagonal; S-tuples are the edges.
        let r = gadget.database.schema().relation_id("R").unwrap();
        for &t in gadget.database.tuples_of(r) {
            let v = gadget.database.values_of(t);
            assert_eq!(v[0], v[1]);
        }
        let s = gadget.database.schema().relation_id("S").unwrap();
        assert_eq!(gadget.database.tuples_of(s).len(), 2);
    }
}
