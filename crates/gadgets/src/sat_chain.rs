//! Proposition 10 and Lemmas 52–54: 3SAT ≤ RES(q_chain) and its unary
//! expansions (Figures 10–12).
//!
//! The construction follows the paper's Figure 10. A database for
//! `q_chain :- R(x,y), R(y,z)` is a directed graph whose witnesses are the
//! directed 2-paths:
//!
//! * **Variable gadget** — for each variable a directed cycle of `2m` edges
//!   alternating "blue" edges `x_i^j → x̄_i^j` and "red" edges
//!   `x̄_i^j → x_i^{j+1}`; the only minimum contingency sets of the cycle
//!   pick all blue edges (variable = true) or all red edges (variable =
//!   false), costing `m` per variable.
//! * **Clause gadget** — a directed triangle `a_j → b_j → c_j → a_j`, three
//!   spokes `a'_j → a_j`, … and three connector edges that attach each spoke
//!   to the head of the variable edge whose deletion encodes "this literal is
//!   true". The gadget costs 5 deletions when at least one attached literal
//!   is true and 6 otherwise.
//!
//! Altogether `ψ ∈ 3SAT ⇔ (D_ψ, nm + 5m) ∈ RES(q_chain)`; this equivalence is
//! validated end-to-end against DPLL and the exact solver.
//!
//! The unary expansions of Lemmas 52–54 ([`chain_expansion_gadget`]) reuse
//! the same edge structure and add one unary tuple per domain value, which
//! preserves every witness. Note that the *threshold accounting* of the
//! plain gadget does **not** carry over verbatim: the paper's lemmas modify
//! the clause gadgets so that unary tuples are never strictly better choices,
//! and we have not reproduced those modified gadgets — the exact resilience
//! of an expansion instance can be below `nm + 5m` (the
//! [`ChainGadget::threshold_is_exact`] flag records this). The
//! NP-completeness of the expansions themselves is still reproduced by the
//! dichotomy classifier (experiment E5 / `tests/dichotomy.rs`).

use cq::catalogue;
use cq::Query;
use database::{ConstPool, Database};
use satgad::CnfFormula;

/// Which unary expansion of `q_chain` to target (Section 7.1, Figure 6a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainExpansion {
    /// Plain `q_chain :- R(x,y), R(y,z)` (Proposition 10).
    Plain,
    /// `q_achain :- A(x), R(x,y), R(y,z)`.
    A,
    /// `q_bchain :- R(x,y), B(y), R(y,z)`.
    B,
    /// `q_cchain :- R(x,y), R(y,z), C(z)`.
    C,
    /// `q_abchain`.
    AB,
    /// `q_bcchain`.
    BC,
    /// `q_acchain`.
    AC,
    /// `q_abcchain`.
    ABC,
}

impl ChainExpansion {
    /// All eight expansions, in the order of Section 7.1.
    pub fn all() -> [ChainExpansion; 8] {
        [
            ChainExpansion::Plain,
            ChainExpansion::A,
            ChainExpansion::B,
            ChainExpansion::C,
            ChainExpansion::AB,
            ChainExpansion::BC,
            ChainExpansion::AC,
            ChainExpansion::ABC,
        ]
    }

    /// The catalogue query this expansion targets.
    pub fn query(self) -> Query {
        match self {
            ChainExpansion::Plain => catalogue::q_chain().query,
            ChainExpansion::A => catalogue::q_achain().query,
            ChainExpansion::B => catalogue::q_bchain().query,
            ChainExpansion::C => catalogue::q_cchain().query,
            ChainExpansion::AB => catalogue::q_abchain().query,
            ChainExpansion::BC => catalogue::q_bcchain().query,
            ChainExpansion::AC => catalogue::q_acchain().query,
            ChainExpansion::ABC => catalogue::q_abcchain().query,
        }
    }

    fn has_a(self) -> bool {
        matches!(
            self,
            ChainExpansion::A | ChainExpansion::AB | ChainExpansion::AC | ChainExpansion::ABC
        )
    }

    fn has_b(self) -> bool {
        matches!(
            self,
            ChainExpansion::B | ChainExpansion::AB | ChainExpansion::BC | ChainExpansion::ABC
        )
    }

    fn has_c(self) -> bool {
        matches!(
            self,
            ChainExpansion::C | ChainExpansion::BC | ChainExpansion::AC | ChainExpansion::ABC
        )
    }
}

/// The output of the 3SAT → chain reduction.
#[derive(Clone, Debug)]
pub struct ChainGadget {
    /// The target query.
    pub query: Query,
    /// The constructed database `D_ψ`.
    pub database: Database,
    /// The threshold `n·m + 5m` of the plain gadget: for
    /// [`ChainExpansion::Plain`], `ψ` is satisfiable iff the resilience
    /// equals `threshold` (and is never smaller).
    pub threshold: usize,
    /// Whether the iff-accounting above applies (`true` only for the plain
    /// gadget; the unary expansions reuse the structure but their exact
    /// thresholds would need the modified gadgets of Lemmas 52–54).
    pub threshold_is_exact: bool,
    /// The constant pool used, so callers can decode constants back to the
    /// paper's names (e.g. `x1^2`, `a'3`).
    pub pool: ConstPool,
}

/// Builds the Proposition 10 gadget for a 3-CNF formula.
///
/// # Panics
/// Panics if some clause does not have exactly three literals.
pub fn chain_gadget(formula: &CnfFormula) -> ChainGadget {
    chain_expansion_gadget(formula, ChainExpansion::Plain)
}

/// Builds the gadget targeting one of the eight unary expansions of
/// `q_chain` (Lemmas 52–54).
pub fn chain_expansion_gadget(formula: &CnfFormula, expansion: ChainExpansion) -> ChainGadget {
    assert!(
        formula.is_3cnf(),
        "the chain gadget expects a 3-CNF formula"
    );
    let query = expansion.query();
    let mut db = Database::for_query(&query);
    let mut pool = ConstPool::new();
    let n = formula.num_vars;
    let m = formula.num_clauses().max(1);

    let pos = |pool: &mut ConstPool, var: usize, j: usize| pool.intern(format!("x{var}^{j}"));
    let neg = |pool: &mut ConstPool, var: usize, j: usize| pool.intern(format!("nx{var}^{j}"));

    // Variable gadgets: cycles of 2m edges.
    for var in 0..n {
        for j in 0..m {
            let p = pos(&mut pool, var, j);
            let q_ = neg(&mut pool, var, j);
            let p_next = pos(&mut pool, var, (j + 1) % m);
            // Blue edge (delete all of these <=> variable is TRUE).
            db.insert_named("R", &[p, q_]);
            // Red edge (delete all of these <=> variable is FALSE).
            db.insert_named("R", &[q_, p_next]);
        }
    }

    // Clause gadgets.
    for (j, clause) in formula.clauses.iter().enumerate() {
        let a = pool.intern(format!("a{j}"));
        let b = pool.intern(format!("b{j}"));
        let c = pool.intern(format!("c{j}"));
        let spokes = [
            pool.intern(format!("a'{j}")),
            pool.intern(format!("b'{j}")),
            pool.intern(format!("c'{j}")),
        ];
        // Central triangle.
        db.insert_named("R", &[a, b]);
        db.insert_named("R", &[b, c]);
        db.insert_named("R", &[c, a]);
        // Spokes into the triangle.
        db.insert_named("R", &[spokes[0], a]);
        db.insert_named("R", &[spokes[1], b]);
        db.insert_named("R", &[spokes[2], c]);
        // Connectors: attach each spoke to the head of the designated
        // variable edge (blue for a positive literal, red for a negative
        // one) of this clause's segment.
        for (p, lit) in clause.iter().enumerate() {
            let head = if lit.positive {
                neg(&mut pool, lit.var, j)
            } else {
                pos(&mut pool, lit.var, (j + 1) % m)
            };
            db.insert_named("R", &[head, spokes[p]]);
        }
    }

    // Unary expansions: one tuple per domain value for each unary relation
    // present in the target query, preserving all witnesses.
    let domain: Vec<database::Constant> = db.active_domain().into_iter().collect();
    for value in domain {
        if expansion.has_a() {
            db.insert_named("A", &[value]);
        }
        if expansion.has_b() {
            db.insert_named("B", &[value]);
        }
        if expansion.has_c() {
            db.insert_named("C", &[value]);
        }
    }

    let threshold = n * m + 5 * formula.num_clauses();
    ChainGadget {
        query,
        database: db,
        threshold,
        threshold_is_exact: expansion == ChainExpansion::Plain,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::ExactSolver;
    use satgad::CnfFormula;

    /// Small satisfiable 3-CNF formula.
    fn sat_formula() -> CnfFormula {
        // (x0 | x1 | x2) & (!x0 | x1 | !x2) & (x0 | !x1 | x2)
        CnfFormula::from_clauses(
            3,
            &[
                &[(0, true), (1, true), (2, true)],
                &[(0, false), (1, true), (2, false)],
                &[(0, true), (1, false), (2, true)],
            ],
        )
    }

    /// Small unsatisfiable 3-CNF formula: all eight sign patterns over three
    /// variables.
    fn unsat_formula() -> CnfFormula {
        let mut f = CnfFormula::new(3);
        for mask in 0..8u8 {
            f.add_clause(
                (0..3)
                    .map(|v| satgad::Literal {
                        var: v,
                        positive: mask & (1 << v) != 0,
                    })
                    .collect(),
            );
        }
        f
    }

    /// Tiny unsatisfiable formula over two variables (padded to width 3 by
    /// repeating a literal? no — use 3 distinct vars to stay 3-CNF).
    fn small_sat_formula() -> CnfFormula {
        CnfFormula::from_clauses(3, &[&[(0, true), (1, false), (2, true)]])
    }

    fn validate(formula: &CnfFormula, expansion: ChainExpansion) {
        let gadget = chain_expansion_gadget(formula, expansion);
        let resilience = ExactSolver::new()
            .resilience_value(&gadget.query, &gadget.database)
            .expect("finite resilience");
        let satisfiable = formula.is_satisfiable();
        assert!(
            resilience >= gadget.threshold,
            "{expansion:?}: resilience {resilience} below threshold {}",
            gadget.threshold
        );
        assert_eq!(
            satisfiable,
            resilience == gadget.threshold,
            "{expansion:?}: satisfiable={satisfiable} but resilience={resilience}, threshold={}",
            gadget.threshold
        );
    }

    #[test]
    fn plain_chain_gadget_satisfiable() {
        validate(&sat_formula(), ChainExpansion::Plain);
        validate(&small_sat_formula(), ChainExpansion::Plain);
    }

    #[test]
    #[ignore = "expensive: the smallest unsatisfiable 3-CNF core has 8 clauses and the \
                exact hitting-set search on the 120-tuple gadget takes minutes; run with \
                `cargo test -- --ignored` to exercise the unsatisfiable direction"]
    fn plain_chain_gadget_unsatisfiable() {
        validate(&unsat_formula(), ChainExpansion::Plain);
    }

    #[test]
    fn plain_gadget_witness_structure_matches_the_figure() {
        // Structural check on the (large) unsatisfiable-core gadget that is
        // cheap to verify: 2m witnesses per variable cycle and 12 witnesses
        // per clause component (3 triangle pairs, 3 spoke-triangle, 3
        // connector-spoke, 3 variable-connector), exactly as in Figure 10.
        let formula = unsat_formula();
        let gadget = chain_gadget(&formula);
        let ws = database::WitnessSet::build(&gadget.query, &gadget.database);
        let n = formula.num_vars;
        let m = formula.num_clauses();
        assert_eq!(ws.len(), 2 * n * m + 12 * m);
        assert!(!ws.has_undeletable_witness());
        // The greedy upper bound is a valid contingency set and is at least
        // the threshold (the unsatisfiable core can never reach it).
        let bounds = resilience_core::ResilienceBounds::from_witnesses(&ws);
        assert!(bounds.upper.unwrap() >= gadget.threshold);
        assert!(bounds.lower <= bounds.upper.unwrap());
    }

    #[test]
    fn unary_expansions_preserve_witness_structure() {
        // The expansions reuse the plain gadget's edges and add unary tuples
        // for every domain value, so every plain witness extends to exactly
        // one expansion witness. (The exact threshold accounting is *not*
        // claimed for expansions; see the module docs.)
        let f = small_sat_formula();
        let plain = chain_expansion_gadget(&f, ChainExpansion::Plain);
        let plain_witnesses = database::witnesses(&plain.query, &plain.database).len();
        for expansion in ChainExpansion::all() {
            let gadget = chain_expansion_gadget(&f, expansion);
            assert!(!gadget.threshold_is_exact || expansion == ChainExpansion::Plain);
            let count = database::witnesses(&gadget.query, &gadget.database).len();
            assert_eq!(count, plain_witnesses, "{expansion:?}");
            // Resilience can only go down when more deletion choices exist.
            let rho = ExactSolver::new()
                .resilience_value(&gadget.query, &gadget.database)
                .unwrap();
            assert!(rho <= gadget.threshold, "{expansion:?}");
        }
    }

    #[test]
    fn gadget_size_accounting() {
        let f = sat_formula();
        let gadget = chain_gadget(&f);
        let n = f.num_vars;
        let m = f.num_clauses();
        // 2m edges per variable + 9 edges per clause.
        assert_eq!(gadget.database.num_tuples(), 2 * n * m + 9 * m);
        assert_eq!(gadget.threshold, n * m + 5 * m);
        // Constants decode back to readable names.
        assert!(gadget.pool.lookup("x0^0").is_some());
        assert!(gadget.pool.lookup("a'1").is_some());
    }
}
