//! Executable hardness reductions from the paper.
//!
//! Each module builds, for an instance of a classical NP-hard problem, the
//! database instance the paper's reduction prescribes, together with the
//! threshold `k` such that the source instance is a "yes" instance iff
//! `(D, k) ∈ RES(q)`. Because the source problems (Vertex Cover, 3SAT) and
//! resilience itself are solved exactly by the `satgad` and
//! `resilience-core` crates, every reduction is *experimentally validated*
//! end-to-end in the test suite and in benchmarks E2, E5 and E7.
//!
//! | Module | Paper result | Reduction |
//! |---|---|---|
//! | [`vc_qvc`] | Proposition 9 | Vertex Cover → RES(q_vc) |
//! | [`sat_chain`] | Proposition 10, Lemmas 52–54, Figures 10–12 | 3SAT → RES(q_chain) and its unary expansions |
//! | [`paths`] | Theorems 27–28 | RES(q_vc) → RES(q) for any ssj query with a unary or binary path |
//! | [`triangle`] | Propositions 56, 57 / Section 9 | Vertex Cover → RES(q_△) via Independent Join Paths, and RES(q_△) → RES(q_T) |
//! | [`sj_variation`] | Lemma 21 | tuple-tagging construction RES(q) ≤ RES(q_sj) |

pub mod paths;
pub mod sat_chain;
pub mod sj_variation;
pub mod triangle;
pub mod vc_qvc;

pub use sat_chain::{chain_expansion_gadget, chain_gadget, ChainGadget};
pub use triangle::{triangle_gadget_from_vc, tripod_from_triangle};
pub use vc_qvc::vc_to_qvc;
