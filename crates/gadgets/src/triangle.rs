//! Hardness constructions around the triangle query `q_△` and the tripod
//! query `q_T` (Propositions 56 and 57), realized through the Independent
//! Join Path template of Section 9.
//!
//! * [`triangle_gadget_from_vc`] reduces Vertex Cover to `RES(q_△)` by
//!   replacing every edge of the input graph with the triangle IJP of
//!   Example 59 (Figure 18): the two endpoint `R`-tuples are shared between
//!   all edges incident to the same vertex, and every edge contributes one
//!   extra forced deletion. `G` has a vertex cover of size `k` iff
//!   `(D_G, k + |E|) ∈ RES(q_△)`.
//! * [`tripod_from_triangle`] is the Proposition 57 construction turning a
//!   triangle-query instance into a tripod-query instance of equal
//!   resilience.

use cq::catalogue::{q_triangle, q_tripod};
use cq::Query;
use database::{witnesses, ConstPool, Database};
use satgad::UndirectedGraph;

/// Output of the Vertex Cover → `RES(q_△)` reduction.
#[derive(Clone, Debug)]
pub struct TriangleGadget {
    /// The triangle query.
    pub query: Query,
    /// The constructed database.
    pub database: Database,
    /// Number of edges of the source graph: the resilience equals
    /// `min-vertex-cover + num_edges`.
    pub num_edges: usize,
    /// The constant pool used for readable constants.
    pub pool: ConstPool,
}

impl TriangleGadget {
    /// The decision threshold corresponding to a vertex cover of size `k`.
    pub fn threshold_for_cover(&self, k: usize) -> usize {
        k + self.num_edges
    }
}

/// Builds the IJP-based Vertex Cover reduction for the triangle query.
pub fn triangle_gadget_from_vc(graph: &UndirectedGraph) -> TriangleGadget {
    let query = q_triangle().query;
    let mut db = Database::for_query(&query);
    let mut pool = ConstPool::new();

    // One endpoint R-tuple per vertex: R(u1, u2).
    let v1 = |pool: &mut ConstPool, u: usize| pool.intern(format!("v{u}_1"));
    let v2 = |pool: &mut ConstPool, u: usize| pool.intern(format!("v{u}_2"));
    for u in 0..graph.num_vertices() {
        let a = v1(&mut pool, u);
        let b = v2(&mut pool, u);
        db.insert_named("R", &[a, b]);
    }
    // One Example-59 IJP per edge, sharing the endpoint tuples.
    for (idx, (u, v)) in graph.edges().enumerate() {
        let u1 = v1(&mut pool, u);
        let u2 = v2(&mut pool, u);
        let vv1 = v1(&mut pool, v);
        let vv2 = v2(&mut pool, v);
        let mid = pool.intern(format!("e{idx}"));
        db.insert_named("R", &[vv1, u2]);
        db.insert_named("S", &[u2, mid]);
        db.insert_named("S", &[vv2, mid]);
        db.insert_named("T", &[mid, u1]);
        db.insert_named("T", &[mid, vv1]);
    }
    TriangleGadget {
        query,
        database: db,
        num_edges: graph.num_edges(),
        pool,
    }
}

/// Output of the Proposition 57 construction.
#[derive(Clone, Debug)]
pub struct TripodGadget {
    /// The tripod query `q_T`.
    pub query: Query,
    /// The constructed database, with the same resilience as the input
    /// triangle instance.
    pub database: Database,
}

/// Proposition 57: maps a `q_△` instance to a `q_T` instance of equal
/// resilience. `A`, `B`, `C` are copies of `R`, `S`, `T` over pair-constants
/// `<ab>`, `<bc>`, `<ca>`; `W` connects exactly the pair-constants that come
/// from a triangle witness, which keeps the witness sets in 1:1
/// correspondence while `W` is dominated by `A`.
pub fn tripod_from_triangle(triangle_query: &Query, triangle_db: &Database) -> TripodGadget {
    let query = q_tripod().query;
    let mut db = Database::for_query(&query);
    let mut pool = ConstPool::new();

    let pair = |pool: &mut ConstPool, tag: &str, a: database::Constant, b: database::Constant| {
        pool.intern(format!("<{tag}:{a},{b}>"))
    };

    let r = triangle_db.schema().relation_id("R").expect("R");
    let s = triangle_db.schema().relation_id("S").expect("S");
    let t = triangle_db.schema().relation_id("T").expect("T");
    for &id in triangle_db.tuples_of(r) {
        let v = triangle_db.values_of(id);
        let c = pair(&mut pool, "ab", v[0], v[1]);
        db.insert_named("A", &[c]);
    }
    for &id in triangle_db.tuples_of(s) {
        let v = triangle_db.values_of(id);
        let c = pair(&mut pool, "bc", v[0], v[1]);
        db.insert_named("B", &[c]);
    }
    for &id in triangle_db.tuples_of(t) {
        let v = triangle_db.values_of(id);
        let c = pair(&mut pool, "ca", v[0], v[1]);
        db.insert_named("C", &[c]);
    }
    // W connects the pair-constants of each triangle witness (a, b, c).
    for w in witnesses(triangle_query, triangle_db) {
        let a = w.valuation[0];
        let b = w.valuation[1];
        let c = w.valuation[2];
        let ab = pair(&mut pool, "ab", a, b);
        let bc = pair(&mut pool, "bc", b, c);
        let ca = pair(&mut pool, "ca", c, a);
        db.insert_named("W", &[ab, bc, ca]);
    }
    TripodGadget {
        query,
        database: db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_core::ExactSolver;
    use satgad::min_vertex_cover_size;

    fn cycle(n: usize) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn path(n: usize) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    fn validate_triangle(graph: &UndirectedGraph) {
        let gadget = triangle_gadget_from_vc(graph);
        let vc = min_vertex_cover_size(graph);
        let resilience = ExactSolver::new()
            .resilience_value(&gadget.query, &gadget.database)
            .expect("finite");
        assert_eq!(
            resilience,
            gadget.threshold_for_cover(vc),
            "resilience must equal VC + |E| (VC = {vc}, |E| = {})",
            gadget.num_edges
        );
    }

    #[test]
    fn single_edge_matches_example_59() {
        let mut g = UndirectedGraph::new(2);
        g.add_edge(0, 1);
        let gadget = triangle_gadget_from_vc(&g);
        assert_eq!(gadget.database.num_tuples(), 2 + 5);
        validate_triangle(&g);
        // The single-edge gadget is exactly an Independent Join Path.
        assert!(resilience_core::ijp::check_ijp(
            &gadget.query,
            &gadget.database
        ));
    }

    #[test]
    fn triangle_gadget_on_cycles_and_paths() {
        validate_triangle(&cycle(3));
        validate_triangle(&cycle(4));
        validate_triangle(&cycle(5));
        validate_triangle(&path(4));
        validate_triangle(&path(5));
    }

    #[test]
    fn triangle_gadget_on_star() {
        let mut g = UndirectedGraph::new(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf);
        }
        validate_triangle(&g);
    }

    #[test]
    fn tripod_construction_preserves_resilience() {
        for graph in [cycle(3), cycle(4), path(4)] {
            let triangle = triangle_gadget_from_vc(&graph);
            let tripod = tripod_from_triangle(&triangle.query, &triangle.database);
            let solver = ExactSolver::new();
            let rho_triangle = solver
                .resilience_value(&triangle.query, &triangle.database)
                .unwrap();
            let rho_tripod = solver
                .resilience_value(&tripod.query, &tripod.database)
                .unwrap();
            assert_eq!(rho_triangle, rho_tripod);
        }
    }

    #[test]
    fn tripod_witnesses_are_in_bijection() {
        let graph = cycle(4);
        let triangle = triangle_gadget_from_vc(&graph);
        let tripod = tripod_from_triangle(&triangle.query, &triangle.database);
        let w1 = witnesses(&triangle.query, &triangle.database).len();
        let w2 = witnesses(&tripod.query, &tripod.database).len();
        assert_eq!(w1, w2);
    }
}
