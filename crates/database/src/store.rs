//! The read-side abstraction over database instances.
//!
//! The solve pipeline never mutates an instance: it only probes the schema,
//! the tuple arena and the per-position join index. [`TupleStore`] captures
//! exactly that read surface, so every algorithm (witness enumeration, the
//! flow constructions, the exact solver) is written once and runs unchanged
//! over both the mutable [`Database`] and the compacted
//! [`FrozenDb`](crate::FrozenDb). Generic call sites monomorphize, so the
//! abstraction costs nothing in the inner loops.

use crate::instance::Database;
use crate::tuple::{Constant, TupleId};
use cq::{Query, RelId, Schema};
use std::collections::HashSet;

/// Read-only access to a stored instance: schema, tuples and the
/// per-relation/per-position join index.
///
/// Implementations must use the same dense [`TupleId`] space semantics as
/// [`Database`]: ids are `0..num_tuples()` and
/// [`tuples_matching`](TupleStore::tuples_matching) returns candidates in
/// insertion order.
pub trait TupleStore {
    /// The schema of the instance.
    fn schema(&self) -> &Schema;

    /// Total number of tuples (`n = |D|`).
    fn num_tuples(&self) -> usize;

    /// The relation a tuple belongs to.
    fn relation_of(&self, id: TupleId) -> RelId;

    /// The values of a tuple.
    fn values_of(&self, id: TupleId) -> &[Constant];

    /// Ids of all tuples of `rel`, in insertion order.
    fn tuples_of(&self, rel: RelId) -> &[TupleId];

    /// Tuples of `rel` whose attribute at `pos` equals `value` (insertion
    /// order), served from the per-relation, per-position index.
    fn tuples_matching(&self, rel: RelId, pos: usize, value: Constant) -> &[TupleId];

    /// Looks up the id of an exact tuple, if present.
    fn lookup_values(&self, rel: RelId, values: &[Constant]) -> Option<TupleId>;

    /// Whether the store contains the given tuple.
    fn contains_values(&self, rel: RelId, values: &[Constant]) -> bool {
        self.lookup_values(rel, values).is_some()
    }

    /// Whether the store holds no tuples.
    fn is_empty(&self) -> bool {
        self.num_tuples() == 0
    }

    /// Iterates over all tuple ids.
    fn iter_tuples(&self) -> TupleIdIter {
        TupleIdIter {
            next: 0,
            end: self.num_tuples() as u32,
        }
    }

    /// Dense deletability mask: `mask[t]` is `true` iff tuple `t` belongs to
    /// a relation with at least one endogenous atom in `q` (the tuples a
    /// contingency set may delete). Relations are matched by name because
    /// query and store may hold structurally identical but separately-built
    /// schemas.
    fn endogenous_mask(&self, q: &Query) -> Vec<bool> {
        let mut out = Vec::new();
        self.endogenous_mask_into(q, &mut out);
        out
    }

    /// [`TupleStore::endogenous_mask`] into a caller-owned buffer (cleared
    /// first), so repeated solves — the engine's session steps — reuse the
    /// allocation.
    fn endogenous_mask_into(&self, q: &Query, out: &mut Vec<bool>) {
        let schema = self.schema();
        let mut endo_rel = vec![false; schema.len()];
        for i in q.endogenous_atoms() {
            let name = q.schema().name(q.atom(i).relation);
            if let Some(r) = schema.relation_id(name) {
                endo_rel[r.index()] = true;
            }
        }
        out.clear();
        out.extend(
            (0..self.num_tuples() as u32).map(|i| endo_rel[self.relation_of(TupleId(i)).index()]),
        );
    }
}

/// Iterator over the dense tuple-id space of a store.
#[derive(Clone, Debug)]
pub struct TupleIdIter {
    next: u32,
    end: u32,
}

impl Iterator for TupleIdIter {
    type Item = TupleId;

    fn next(&mut self) -> Option<TupleId> {
        if self.next < self.end {
            let id = TupleId(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TupleIdIter {}

/// Copies a store into a fresh mutable [`Database`], skipping the tuples in
/// `deleted`. Tuple ids are *not* preserved — this mirrors
/// [`Database::without`] for arbitrary stores and is used by constructions
/// that solve on a reduced instance (e.g. `q_TS3conf`).
pub fn copy_without<S: TupleStore + ?Sized>(store: &S, deleted: &HashSet<TupleId>) -> Database {
    let mut out = Database::new(store.schema().clone());
    for id in store.iter_tuples() {
        if !deleted.contains(&id) {
            out.insert(store.relation_of(id), store.values_of(id));
        }
    }
    out
}

/// [`copy_without`] with the deleted set given as a dense mask over the
/// store's tuple-id space (`deleted.len() == store.num_tuples()`): no hash
/// set to build or probe. Because insertion replays the surviving tuples in
/// ascending id order, the new id of the `k`-th surviving tuple is exactly
/// `k` — callers (the engine's deletion sessions) use this to translate
/// results back to the original ids.
pub fn copy_without_mask<S: TupleStore + ?Sized>(store: &S, deleted: &[bool]) -> Database {
    let mut out = Database::new(store.schema().clone());
    for id in store.iter_tuples() {
        if !deleted[id.index()] {
            out.insert(store.relation_of(id), store.values_of(id));
        }
    }
    out
}

impl TupleStore for Database {
    fn schema(&self) -> &Schema {
        Database::schema(self)
    }

    fn num_tuples(&self) -> usize {
        Database::num_tuples(self)
    }

    fn relation_of(&self, id: TupleId) -> RelId {
        Database::relation_of(self, id)
    }

    fn values_of(&self, id: TupleId) -> &[Constant] {
        Database::values_of(self, id)
    }

    fn tuples_of(&self, rel: RelId) -> &[TupleId] {
        Database::tuples_of(self, rel)
    }

    fn tuples_matching(&self, rel: RelId, pos: usize, value: Constant) -> &[TupleId] {
        Database::tuples_matching(self, rel, pos, value)
    }

    fn lookup_values(&self, rel: RelId, values: &[Constant]) -> Option<TupleId> {
        Database::lookup(self, rel, values)
    }

    fn endogenous_mask(&self, q: &Query) -> Vec<bool> {
        Database::endogenous_mask(self, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    fn generic_probe<S: TupleStore>(db: &S) -> usize {
        let r = db.schema().relation_id("R").unwrap();
        db.tuples_matching(r, 1, Constant(3)).len()
    }

    #[test]
    fn database_implements_the_store_trait() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        db.insert_named("R", &[3, 3]);
        assert_eq!(generic_probe(&db), 2);
        assert_eq!(TupleStore::num_tuples(&db), 3);
        assert_eq!(db.iter_tuples().count(), 3);
        let r = TupleStore::schema(&db).relation_id("R").unwrap();
        assert!(db.contains_values(r, &[Constant(1), Constant(2)]));
        assert!(!db.contains_values(r, &[Constant(2), Constant(1)]));
    }

    #[test]
    fn copy_without_mask_renumbers_survivors_densely() {
        let q = parse_query("R(x,y), S(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]); // id 0, deleted
        db.insert_named("R", &[2, 3]); // id 1 -> new id 0
        db.insert_named("S", &[9, 9]); // id 2, deleted
        db.insert_named("S", &[7, 8]); // id 3 -> new id 1
        let reduced = copy_without_mask(&db, &[true, false, true, false]);
        assert_eq!(reduced.num_tuples(), 2);
        assert_eq!(reduced.values_of(TupleId(0)), db.values_of(TupleId(1)));
        assert_eq!(reduced.values_of(TupleId(1)), db.values_of(TupleId(3)));
        // And a frozen store goes through the same generic path.
        let reduced2 = copy_without_mask(&db.freeze(), &[true, false, true, false]);
        assert_eq!(reduced2.num_tuples(), 2);
        assert_eq!(reduced2.values_of(TupleId(0)), db.values_of(TupleId(1)));
    }

    #[test]
    fn copy_without_matches_database_without() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        let keep = db.insert_named("R", &[2, 3]);
        let deleted: HashSet<TupleId> = db.iter_tuples().filter(|&t| t != keep).collect();
        let reduced = copy_without(&db, &deleted);
        assert_eq!(reduced.num_tuples(), 1);
        let r = reduced.schema().relation_id("R").unwrap();
        assert!(reduced.contains(r, &[2, 3]));
    }
}
