//! On-disk columnar snapshots of [`FrozenDb`].
//!
//! A snapshot serializes every flat CSR arena of a frozen instance into a
//! versioned, checksummed, section-table file that loads back in
//! O(sections) — no text parse, no re-freeze: the arenas are viewed in
//! place, either through a private read-only `mmap` or one aligned heap
//! buffer ([`LoadMode`]). The join index travels in its flat sorted
//! representation (`JoinIndex::Sorted` in `crate::frozen`), which probes to
//! the identical arena slices as the hash index freezing builds, so solving
//! a loaded snapshot is byte-identical to solving the original instance.
//!
//! # File layout
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (48 B): magic "RESNAP01" · version · endian mark      │
//! │                section count · table checksum                │
//! │                payload checksum · file length                │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section table: kind · elem size · offset · count   (×N)      │
//! ├──────────────────────────────────────────────────────────────┤
//! │ payload: one 8-byte-aligned section per arena                │
//! │   schema text · tuple_rel · tuple_start · values             │
//! │   rel_tuples · rel_offsets · pos_base · index_arena          │
//! │   slot_offsets · bucket keys/starts/lens                     │
//! │   [labels] · [source ids]                                    │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Integrity: the section table is always verified against its FNV-1a
//! checksum; the payload checksum is verified by default and can be skipped
//! ([`LoadOptions::verify_payload`]) for the strict O(sections) open that
//! large mmap-backed instances want (verification touches every page).
//! Values are little-endian; the endian mark rejects foreign-endian files.
//!
//! The optional sections carry what the daemon and the shard pipeline need:
//! the text-format label map (`labels`, so `resd` can resolve facts against
//! snapshot-loaded instances) and the shard → original [`TupleId`] map
//! (`source ids`, so per-shard contingency sets translate back to the
//! instance they were cut from; see [`crate::shard`]).

use crate::arena::{AlignedBytes, Arena, SharedBytes};
use crate::frozen::{FrozenDb, JoinIndex};
use crate::tuple::{Constant, TupleId};
use cq::{RelId, Schema};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;
use std::sync::OnceLock;

/// File magic: "RESNAP" + two digits of format generation.
pub const MAGIC: [u8; 8] = *b"RESNAP01";
/// Current format version. Readers reject anything newer.
pub const VERSION: u32 = 1;
/// Little-endian byte-order mark.
const ENDIAN_MARK: u32 = 0x0102_0304;
/// Header size in bytes.
const HEADER_LEN: u64 = 48;
/// Section-table entry size in bytes.
const ENTRY_LEN: u64 = 24;

/// Section kinds. Stable wire ids — append, never renumber.
pub mod section {
    /// Schema text: `name arity\n` per relation, in [`cq::RelId`] order.
    pub const SCHEMA: u32 = 1;
    /// Per tuple: relation id (`u32`).
    pub const TUPLE_REL: u32 = 2;
    /// Per tuple: offset into the values section (`u32`).
    pub const TUPLE_START: u32 = 3;
    /// All tuple values in id order (`u64`).
    pub const VALUES: u32 = 4;
    /// CSR per-relation tuple lists (`u32`).
    pub const REL_TUPLES: u32 = 5;
    /// CSR offsets into `REL_TUPLES` (`u32`, `#relations + 1`).
    pub const REL_OFFSETS: u32 = 6;
    /// Prefix sums of relation arities into the index slots (`u32`).
    pub const POS_BASE: u32 = 7;
    /// The flat join-index bucket arena (`u32` tuple ids).
    pub const INDEX_ARENA: u32 = 8;
    /// Per-slot offsets into the bucket entry arrays (`u32`).
    pub const SLOT_OFFSETS: u32 = 9;
    /// Bucket keys, ascending within each slot (`u64` constants).
    pub const BUCKET_KEYS: u32 = 10;
    /// Bucket range starts into `INDEX_ARENA` (`u32`).
    pub const BUCKET_STARTS: u32 = 11;
    /// Bucket range lengths (`u32`).
    pub const BUCKET_LENS: u32 = 12;
    /// Optional: text-format label map records (`u64` value, `u32` length,
    /// UTF-8 bytes).
    pub const LABELS: u32 = 13;
    /// Optional: per-tuple original [`crate::TupleId`] in the instance this
    /// shard was cut from (`u32`).
    pub const SOURCE_IDS: u32 = 14;

    /// Human-readable section name (for `rescli snapshot info`).
    pub fn name(kind: u32) -> &'static str {
        match kind {
            SCHEMA => "schema",
            TUPLE_REL => "tuple_rel",
            TUPLE_START => "tuple_start",
            VALUES => "values",
            REL_TUPLES => "rel_tuples",
            REL_OFFSETS => "rel_offsets",
            POS_BASE => "pos_base",
            INDEX_ARENA => "index_arena",
            SLOT_OFFSETS => "slot_offsets",
            BUCKET_KEYS => "bucket_keys",
            BUCKET_STARTS => "bucket_starts",
            BUCKET_LENS => "bucket_lens",
            LABELS => "labels",
            SOURCE_IDS => "source_ids",
            _ => "unknown",
        }
    }
}

/// Structured snapshot failure. [`SnapshotError::kind`] gives the stable
/// machine-readable tag the daemon surfaces in its error responses.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file is shorter than its header or recorded length claims.
    Truncated { expected: u64, actual: u64 },
    /// Not a snapshot file.
    BadMagic,
    /// Written on a foreign-endian machine.
    BadEndian,
    /// Format version newer than this reader.
    UnsupportedVersion { found: u32, supported: u32 },
    /// A checksum did not match (`what` is `"section table"` or
    /// `"payload"`).
    ChecksumMismatch {
        what: &'static str,
        expected: u64,
        actual: u64,
    },
    /// A section is malformed (bad bounds, alignment, element size or
    /// content).
    BadSection { kind: u32, reason: &'static str },
    /// A required section is absent.
    MissingSection { kind: u32 },
}

impl SnapshotError {
    /// Stable machine-readable error tag.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotError::Io(_) => "io",
            SnapshotError::Truncated { .. } => "truncated",
            SnapshotError::BadMagic => "bad_magic",
            SnapshotError::BadEndian => "bad_endian",
            SnapshotError::UnsupportedVersion { .. } => "bad_version",
            SnapshotError::ChecksumMismatch { .. } => "bad_checksum",
            SnapshotError::BadSection { .. } => "bad_section",
            SnapshotError::MissingSection { .. } => "missing_section",
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Truncated { expected, actual } => {
                write!(f, "snapshot truncated: expected {expected} bytes, found {actual}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadEndian => write!(f, "snapshot written with foreign byte order"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this reader supports <= {supported})"
            ),
            SnapshotError::ChecksumMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "snapshot {what} checksum mismatch: expected {expected:#018x}, computed {actual:#018x}"
            ),
            SnapshotError::BadSection { kind, reason } => write!(
                f,
                "snapshot section `{}` malformed: {reason}",
                section::name(*kind)
            ),
            SnapshotError::MissingSection { kind } => {
                write!(f, "snapshot missing section `{}`", section::name(*kind))
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and byte-order independent. Not
/// cryptographic — this guards against truncation and bit rot, not
/// adversaries.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Views a slice of POD values as raw bytes (native = little endian; the
/// endian mark guards the other direction).
fn pod_bytes<T: crate::arena::Pod>(s: &[T]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, std::mem::size_of_val(s)) }
}

fn align8(n: u64) -> u64 {
    n.div_ceil(8) * 8
}

struct SectionDesc<'a> {
    kind: u32,
    elem_size: u32,
    count: u64,
    bytes: &'a [u8],
}

/// Extra payload to embed when writing a snapshot.
#[derive(Default)]
pub struct WriteOptions<'a> {
    /// Text-format label map to carry along (`resd` fact resolution).
    pub labels: Option<&'a HashMap<String, u64>>,
    /// Original tuple ids when the instance is a shard of a larger one.
    pub source_ids: Option<&'a [TupleId]>,
}

/// Summary of a written snapshot.
#[derive(Clone, Debug)]
pub struct WriteStats {
    /// Total file length in bytes.
    pub file_len: u64,
    /// Number of sections written.
    pub sections: usize,
    /// Tuples in the instance.
    pub tuples: usize,
}

/// Writes `db` (plus optional labels / source ids) to `path`. The file is
/// created or truncated. Returns the written layout's summary.
pub fn write(
    path: &Path,
    db: &FrozenDb,
    opts: &WriteOptions<'_>,
) -> Result<WriteStats, SnapshotError> {
    // Schema text: one `name arity` line per relation, in id order.
    let mut schema_text = String::new();
    for rel in db.schema().relation_ids() {
        schema_text.push_str(db.schema().name(rel));
        schema_text.push(' ');
        schema_text.push_str(&db.schema().arity(rel).to_string());
        schema_text.push('\n');
    }

    // Label records: value, length, bytes — sorted by value so the file is
    // a deterministic function of the map.
    let mut label_bytes: Vec<u8> = Vec::new();
    if let Some(labels) = opts.labels {
        let mut sorted: Vec<(&String, &u64)> = labels.iter().collect();
        sorted.sort_by_key(|&(_, v)| *v);
        for (name, &value) in sorted {
            label_bytes.extend_from_slice(&value.to_le_bytes());
            label_bytes.extend_from_slice(&(name.len() as u32).to_le_bytes());
            label_bytes.extend_from_slice(name.as_bytes());
        }
    }

    let (slot_offsets, keys, starts, lens) = db.sorted_index();

    let mut sections: Vec<SectionDesc<'_>> = vec![
        SectionDesc {
            kind: section::SCHEMA,
            elem_size: 1,
            count: schema_text.len() as u64,
            bytes: schema_text.as_bytes(),
        },
        SectionDesc {
            kind: section::TUPLE_REL,
            elem_size: 4,
            count: db.tuple_rel.len() as u64,
            bytes: pod_bytes(&db.tuple_rel),
        },
        SectionDesc {
            kind: section::TUPLE_START,
            elem_size: 4,
            count: db.tuple_start.len() as u64,
            bytes: pod_bytes(&db.tuple_start),
        },
        SectionDesc {
            kind: section::VALUES,
            elem_size: 8,
            count: db.values_flat.len() as u64,
            bytes: pod_bytes(&db.values_flat),
        },
        SectionDesc {
            kind: section::REL_TUPLES,
            elem_size: 4,
            count: db.rel_tuples.len() as u64,
            bytes: pod_bytes(&db.rel_tuples),
        },
        SectionDesc {
            kind: section::REL_OFFSETS,
            elem_size: 4,
            count: db.rel_offsets.len() as u64,
            bytes: pod_bytes(&db.rel_offsets),
        },
        SectionDesc {
            kind: section::POS_BASE,
            elem_size: 4,
            count: db.pos_base.len() as u64,
            bytes: pod_bytes(&db.pos_base),
        },
        SectionDesc {
            kind: section::INDEX_ARENA,
            elem_size: 4,
            count: db.index_arena.len() as u64,
            bytes: pod_bytes(&db.index_arena),
        },
        SectionDesc {
            kind: section::SLOT_OFFSETS,
            elem_size: 4,
            count: slot_offsets.len() as u64,
            bytes: pod_bytes(&slot_offsets),
        },
        SectionDesc {
            kind: section::BUCKET_KEYS,
            elem_size: 8,
            count: keys.len() as u64,
            bytes: pod_bytes(&keys),
        },
        SectionDesc {
            kind: section::BUCKET_STARTS,
            elem_size: 4,
            count: starts.len() as u64,
            bytes: pod_bytes(&starts),
        },
        SectionDesc {
            kind: section::BUCKET_LENS,
            elem_size: 4,
            count: lens.len() as u64,
            bytes: pod_bytes(&lens),
        },
    ];
    if opts.labels.is_some() {
        sections.push(SectionDesc {
            kind: section::LABELS,
            elem_size: 1,
            count: label_bytes.len() as u64,
            bytes: &label_bytes,
        });
    }
    if let Some(ids) = opts.source_ids {
        sections.push(SectionDesc {
            kind: section::SOURCE_IDS,
            elem_size: 4,
            count: ids.len() as u64,
            bytes: pod_bytes(ids),
        });
    }

    // Lay sections out 8-aligned after header + table and build the table.
    let table_len = sections.len() as u64 * ENTRY_LEN;
    let mut cursor = HEADER_LEN + table_len;
    let payload_start = cursor;
    let mut table_bytes: Vec<u8> = Vec::with_capacity(table_len as usize);
    let mut offsets: Vec<u64> = Vec::with_capacity(sections.len());
    for s in &sections {
        cursor = align8(cursor);
        offsets.push(cursor);
        table_bytes.extend_from_slice(&s.kind.to_le_bytes());
        table_bytes.extend_from_slice(&s.elem_size.to_le_bytes());
        table_bytes.extend_from_slice(&cursor.to_le_bytes());
        table_bytes.extend_from_slice(&s.count.to_le_bytes());
        cursor += s.bytes.len() as u64;
    }
    let file_len = cursor;

    // Checksums: the payload checksum covers every byte from the end of the
    // table to EOF, alignment padding included, exactly as laid out.
    let table_checksum = fnv1a(&[&table_bytes]);
    let mut payload_chunks: Vec<&[u8]> = Vec::new();
    const PAD: [u8; 8] = [0u8; 8];
    let mut pos = payload_start;
    for (s, &off) in sections.iter().zip(&offsets) {
        let pad = (off - pos) as usize;
        if pad > 0 {
            payload_chunks.push(&PAD[..pad]);
        }
        payload_chunks.push(s.bytes);
        pos = off + s.bytes.len() as u64;
    }
    let payload_checksum = fnv1a(&payload_chunks);

    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&ENDIAN_MARK.to_le_bytes());
    header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    header.extend_from_slice(&table_checksum.to_le_bytes());
    header.extend_from_slice(&payload_checksum.to_le_bytes());
    header.extend_from_slice(&file_len.to_le_bytes());

    let mut out = std::io::BufWriter::new(File::create(path)?);
    out.write_all(&header)?;
    out.write_all(&table_bytes)?;
    for chunk in &payload_chunks {
        out.write_all(chunk)?;
    }
    out.flush()?;
    Ok(WriteStats {
        file_len,
        sections: sections.len(),
        tuples: db.num_tuples(),
    })
}

/// How to back the loaded arenas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// mmap when the platform supports it, buffered otherwise (default).
    Auto,
    /// Require a file mapping; fail where unsupported.
    Mmap,
    /// Read into one aligned heap buffer.
    Buffered,
}

/// Loader options.
#[derive(Clone, Copy, Debug)]
pub struct LoadOptions {
    /// Backing selection.
    pub mode: LoadMode,
    /// Verify the payload checksum (touches every byte). Defaults to on;
    /// turn off for the strict O(sections) open of very large snapshots.
    pub verify_payload: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            mode: LoadMode::Auto,
            verify_payload: true,
        }
    }
}

/// A loaded snapshot: the instance plus the optional sections.
#[derive(Debug)]
pub struct Snapshot {
    /// The instance, solve-ready (no re-freeze happened).
    pub db: FrozenDb,
    /// Text-format label map, empty when the snapshot carries none.
    pub labels: HashMap<String, u64>,
    /// Original tuple ids when this is a shard snapshot.
    pub source_ids: Option<Vec<TupleId>>,
    /// Whether the arenas are mmap-backed (vs. heap).
    pub mapped: bool,
    /// Snapshot file length in bytes.
    pub file_len: u64,
}

struct Entry {
    elem_size: u32,
    offset: u64,
    count: u64,
}

struct Parsed {
    bytes: SharedBytes,
    entries: HashMap<u32, Entry>,
    file_len: u64,
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Validates header + section table over a fully resident byte view.
fn parse_structure(bytes: SharedBytes, verify_payload: bool) -> Result<Parsed, SnapshotError> {
    let b = bytes.as_slice();
    if (b.len() as u64) < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN,
            actual: b.len() as u64,
        });
    }
    if b[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = read_u32(b, 8);
    if version == 0 || version > VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    if read_u32(b, 12) != ENDIAN_MARK {
        return Err(SnapshotError::BadEndian);
    }
    let section_count = read_u32(b, 16);
    let table_checksum = read_u64(b, 24);
    let payload_checksum = read_u64(b, 32);
    let file_len = read_u64(b, 40);
    if file_len != b.len() as u64 {
        return Err(SnapshotError::Truncated {
            expected: file_len,
            actual: b.len() as u64,
        });
    }
    let table_end = HEADER_LEN + section_count as u64 * ENTRY_LEN;
    if table_end > b.len() as u64 {
        return Err(SnapshotError::Truncated {
            expected: table_end,
            actual: b.len() as u64,
        });
    }
    let table = &b[HEADER_LEN as usize..table_end as usize];
    let actual = fnv1a(&[table]);
    if actual != table_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            what: "section table",
            expected: table_checksum,
            actual,
        });
    }
    if verify_payload {
        let actual = fnv1a(&[&b[table_end as usize..]]);
        if actual != payload_checksum {
            return Err(SnapshotError::ChecksumMismatch {
                what: "payload",
                expected: payload_checksum,
                actual,
            });
        }
    }
    let mut entries = HashMap::new();
    for i in 0..section_count as usize {
        let at = HEADER_LEN as usize + i * ENTRY_LEN as usize;
        let kind = read_u32(b, at);
        let entry = Entry {
            elem_size: read_u32(b, at + 4),
            offset: read_u64(b, at + 8),
            count: read_u64(b, at + 16),
        };
        let end = entry
            .offset
            .checked_add(entry.count.saturating_mul(entry.elem_size as u64))
            .ok_or(SnapshotError::BadSection {
                kind,
                reason: "section range overflows",
            })?;
        if entry.offset < table_end || end > file_len {
            return Err(SnapshotError::BadSection {
                kind,
                reason: "section range outside the payload region",
            });
        }
        entries.insert(kind, entry);
    }
    Ok(Parsed {
        bytes,
        entries,
        file_len,
    })
}

impl Parsed {
    fn require(&self, kind: u32, elem_size: u32) -> Result<&Entry, SnapshotError> {
        let e = self
            .entries
            .get(&kind)
            .ok_or(SnapshotError::MissingSection { kind })?;
        if e.elem_size != elem_size {
            return Err(SnapshotError::BadSection {
                kind,
                reason: "unexpected element size",
            });
        }
        Ok(e)
    }

    fn arena<T: crate::arena::Pod>(&self, kind: u32) -> Result<Arena<T>, SnapshotError> {
        let e = self.require(kind, std::mem::size_of::<T>() as u32)?;
        Arena::from_bytes(self.bytes.clone(), e.offset as usize, e.count as usize)
            .map_err(|reason| SnapshotError::BadSection { kind, reason })
    }

    fn section_bytes(&self, kind: u32) -> Option<&[u8]> {
        let e = self.entries.get(&kind)?;
        let b = self.bytes.as_slice();
        Some(&b[e.offset as usize..(e.offset + e.count * e.elem_size as u64) as usize])
    }
}

/// Reads the whole file into one aligned heap buffer.
fn read_buffered(file: &mut File, len: usize) -> Result<SharedBytes, SnapshotError> {
    let mut buf = AlignedBytes::zeroed(len);
    file.read_exact(buf.as_mut_slice())?;
    Ok(SharedBytes::Heap(Arc::new(buf)))
}

/// Loads a snapshot from `path`; see [`LoadOptions`].
pub fn load(path: &Path, opts: &LoadOptions) -> Result<Snapshot, SnapshotError> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len() as usize;
    let bytes = match opts.mode {
        LoadMode::Buffered => read_buffered(&mut file, len)?,
        LoadMode::Mmap => {
            #[cfg(unix)]
            {
                SharedBytes::Mapped(Arc::new(crate::arena::Mmap::map(&file, len)?))
            }
            #[cfg(not(unix))]
            {
                return Err(SnapshotError::Io(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "mmap is not supported on this platform",
                )));
            }
        }
        LoadMode::Auto => {
            #[cfg(unix)]
            {
                match crate::arena::Mmap::map(&file, len) {
                    Ok(m) => SharedBytes::Mapped(Arc::new(m)),
                    Err(_) => read_buffered(&mut file, len)?,
                }
            }
            #[cfg(not(unix))]
            {
                read_buffered(&mut file, len)?
            }
        }
    };
    let mapped = bytes.is_mapped();
    let parsed = parse_structure(bytes, opts.verify_payload)?;

    // Schema.
    let schema_bytes =
        parsed
            .section_bytes(section::SCHEMA)
            .ok_or(SnapshotError::MissingSection {
                kind: section::SCHEMA,
            })?;
    let schema_text = std::str::from_utf8(schema_bytes).map_err(|_| SnapshotError::BadSection {
        kind: section::SCHEMA,
        reason: "schema text is not UTF-8",
    })?;
    let mut schema = Schema::new();
    for line in schema_text.lines() {
        let (name, arity) = line.rsplit_once(' ').ok_or(SnapshotError::BadSection {
            kind: section::SCHEMA,
            reason: "schema line is not `name arity`",
        })?;
        let arity: usize = arity.parse().map_err(|_| SnapshotError::BadSection {
            kind: section::SCHEMA,
            reason: "schema arity is not a number",
        })?;
        schema.add_relation(name, arity);
    }

    let tuple_rel: Arena<RelId> = parsed.arena(section::TUPLE_REL)?;
    let tuple_start: Arena<u32> = parsed.arena(section::TUPLE_START)?;
    let values_flat: Arena<Constant> = parsed.arena(section::VALUES)?;
    let rel_tuples: Arena<TupleId> = parsed.arena(section::REL_TUPLES)?;
    let rel_offsets: Arena<u32> = parsed.arena(section::REL_OFFSETS)?;
    let pos_base: Arena<u32> = parsed.arena(section::POS_BASE)?;
    let index_arena: Arena<TupleId> = parsed.arena(section::INDEX_ARENA)?;
    let slot_offsets: Arena<u32> = parsed.arena(section::SLOT_OFFSETS)?;
    let keys: Arena<Constant> = parsed.arena(section::BUCKET_KEYS)?;
    let starts: Arena<u32> = parsed.arena(section::BUCKET_STARTS)?;
    let lens: Arena<u32> = parsed.arena(section::BUCKET_LENS)?;

    // O(sections) structural consistency: array lengths must agree with the
    // schema and with each other. (Per-element validation is the payload
    // checksum's job.)
    let relations = schema.len();
    let total_slots: usize = schema.relation_ids().map(|r| schema.arity(r)).sum();
    let consistent = tuple_rel.len() == tuple_start.len()
        && rel_offsets.len() == relations + 1
        && pos_base.len() == relations + 1
        && rel_tuples.len() == tuple_rel.len()
        && rel_offsets.last().copied().unwrap_or(0) as usize == rel_tuples.len()
        && slot_offsets.len() == total_slots + 1
        && slot_offsets.last().copied().unwrap_or(0) as usize == keys.len()
        && keys.len() == starts.len()
        && keys.len() == lens.len();
    if !consistent {
        return Err(SnapshotError::BadSection {
            kind: section::REL_OFFSETS,
            reason: "section lengths are mutually inconsistent",
        });
    }

    // Labels.
    let mut labels = HashMap::new();
    if let Some(mut b) = parsed.section_bytes(section::LABELS) {
        while !b.is_empty() {
            if b.len() < 12 {
                return Err(SnapshotError::BadSection {
                    kind: section::LABELS,
                    reason: "truncated label record",
                });
            }
            let value = u64::from_le_bytes(b[0..8].try_into().unwrap());
            let len = u32::from_le_bytes(b[8..12].try_into().unwrap()) as usize;
            if b.len() < 12 + len {
                return Err(SnapshotError::BadSection {
                    kind: section::LABELS,
                    reason: "label text exceeds section",
                });
            }
            let name =
                std::str::from_utf8(&b[12..12 + len]).map_err(|_| SnapshotError::BadSection {
                    kind: section::LABELS,
                    reason: "label text is not UTF-8",
                })?;
            labels.insert(name.to_string(), value);
            b = &b[12 + len..];
        }
    }

    // Source ids (owned copy: small next to the arenas, and the shard merge
    // indexes it heavily).
    let source_ids = match parsed.entries.contains_key(&section::SOURCE_IDS) {
        true => {
            let ids: Arena<TupleId> = parsed.arena(section::SOURCE_IDS)?;
            Some(ids.to_vec())
        }
        false => None,
    };

    let db = FrozenDb {
        schema,
        tuple_rel,
        tuple_start,
        values_flat,
        rel_tuples,
        rel_offsets,
        index: JoinIndex::Sorted {
            slot_offsets,
            keys,
            starts,
            lens,
        },
        index_arena,
        pos_base,
        dedup: OnceLock::new(),
    };
    Ok(Snapshot {
        db,
        labels,
        source_ids,
        mapped,
        file_len: parsed.file_len,
    })
}

/// One section's metadata, as reported by [`info`].
#[derive(Clone, Debug)]
pub struct SectionInfo {
    /// Wire kind id.
    pub kind: u32,
    /// Human-readable name.
    pub name: &'static str,
    /// Element size in bytes.
    pub elem_size: u32,
    /// Absolute file offset.
    pub offset: u64,
    /// Element count.
    pub count: u64,
}

/// Snapshot metadata, readable in O(sections) without loading the arenas.
#[derive(Clone, Debug)]
pub struct SnapshotInfo {
    /// Format version.
    pub version: u32,
    /// File length in bytes.
    pub file_len: u64,
    /// Payload checksum as recorded in the header.
    pub payload_checksum: u64,
    /// Tuples in the instance.
    pub tuples: u64,
    /// Relations in the schema.
    pub relations: usize,
    /// Whether a label map is embedded.
    pub has_labels: bool,
    /// Whether a source-id map is embedded (shard snapshot).
    pub has_source_ids: bool,
    /// Per-section layout, in file order.
    pub sections: Vec<SectionInfo>,
}

/// Reads header, section table and the (small) schema section only.
pub fn info(path: &Path) -> Result<SnapshotInfo, SnapshotError> {
    let mut file = File::open(path)?;
    let actual_len = file.metadata()?.len();
    let mut header = [0u8; HEADER_LEN as usize];
    if actual_len < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN,
            actual: actual_len,
        });
    }
    file.read_exact(&mut header)?;
    if header[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = read_u32(&header, 8);
    if version == 0 || version > VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    if read_u32(&header, 12) != ENDIAN_MARK {
        return Err(SnapshotError::BadEndian);
    }
    let section_count = read_u32(&header, 16);
    let table_checksum = read_u64(&header, 24);
    let payload_checksum = read_u64(&header, 32);
    let file_len = read_u64(&header, 40);
    if file_len != actual_len {
        return Err(SnapshotError::Truncated {
            expected: file_len,
            actual: actual_len,
        });
    }
    let mut table = vec![0u8; section_count as usize * ENTRY_LEN as usize];
    file.read_exact(&mut table)?;
    let actual = fnv1a(&[&table]);
    if actual != table_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            what: "section table",
            expected: table_checksum,
            actual,
        });
    }
    let mut sections = Vec::with_capacity(section_count as usize);
    for i in 0..section_count as usize {
        let at = i * ENTRY_LEN as usize;
        let kind = read_u32(&table, at);
        sections.push(SectionInfo {
            kind,
            name: section::name(kind),
            elem_size: read_u32(&table, at + 4),
            offset: read_u64(&table, at + 8),
            count: read_u64(&table, at + 16),
        });
    }
    let tuples = sections
        .iter()
        .find(|s| s.kind == section::TUPLE_REL)
        .map(|s| s.count)
        .unwrap_or(0);
    let relations = match sections.iter().find(|s| s.kind == section::SCHEMA) {
        Some(s) => {
            let mut text = vec![0u8; (s.count * s.elem_size as u64) as usize];
            file.seek(SeekFrom::Start(s.offset))?;
            file.read_exact(&mut text)?;
            std::str::from_utf8(&text)
                .map(|t| t.lines().count())
                .unwrap_or(0)
        }
        None => 0,
    };
    Ok(SnapshotInfo {
        version,
        file_len,
        payload_checksum,
        tuples,
        relations,
        has_labels: sections.iter().any(|s| s.kind == section::LABELS),
        has_source_ids: sections.iter().any(|s| s.kind == section::SOURCE_IDS),
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Database;
    use cq::parse_query;

    fn sample() -> FrozenDb {
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        db.insert_named("S", &[2, 4]);
        db.insert_named("S", &[3, 4]);
        db.freeze()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("resil-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn assert_same_instance(a: &FrozenDb, b: &FrozenDb) {
        assert_eq!(a.num_tuples(), b.num_tuples());
        assert_eq!(a.to_string(), b.to_string());
        for rel in a.schema().relation_ids() {
            assert_eq!(a.tuples_of(rel), b.tuples_of(rel));
            for pos in 0..a.schema().arity(rel) {
                for v in 0..6u64 {
                    assert_eq!(
                        a.tuples_matching(rel, pos, Constant(v)),
                        b.tuples_matching(rel, pos, Constant(v))
                    );
                }
            }
        }
    }

    #[test]
    fn round_trips_buffered_and_mapped() {
        let frozen = sample();
        let path = tmp("round.snap");
        let mut labels = HashMap::new();
        labels.insert("alice".to_string(), 17u64);
        let stats = write(
            &path,
            &frozen,
            &WriteOptions {
                labels: Some(&labels),
                source_ids: Some(&[TupleId(5), TupleId(7), TupleId(9), TupleId(11)]),
            },
        )
        .unwrap();
        assert_eq!(stats.tuples, 4);

        for mode in [LoadMode::Buffered, LoadMode::Auto] {
            let snap = load(
                &path,
                &LoadOptions {
                    mode,
                    verify_payload: true,
                },
            )
            .unwrap();
            assert_same_instance(&frozen, &snap.db);
            assert_eq!(snap.labels.get("alice"), Some(&17u64));
            assert_eq!(
                snap.source_ids.as_deref(),
                Some(&[TupleId(5), TupleId(7), TupleId(9), TupleId(11)][..])
            );
            assert_eq!(snap.file_len, stats.file_len);
        }
        #[cfg(unix)]
        {
            let snap = load(
                &path,
                &LoadOptions {
                    mode: LoadMode::Mmap,
                    verify_payload: false,
                },
            )
            .unwrap();
            assert!(snap.mapped);
            assert!(snap.db.is_mapped());
            assert_same_instance(&frozen, &snap.db);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn info_reports_layout() {
        let frozen = sample();
        let path = tmp("info.snap");
        write(&path, &frozen, &WriteOptions::default()).unwrap();
        let meta = info(&path).unwrap();
        assert_eq!(meta.version, VERSION);
        assert_eq!(meta.tuples, 4);
        assert_eq!(meta.relations, 2);
        assert!(!meta.has_labels);
        assert!(!meta.has_source_ids);
        assert_eq!(meta.sections.len(), 12);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corruption_truncation_and_versions() {
        let frozen = sample();
        let path = tmp("bad.snap");
        write(&path, &frozen, &WriteOptions::default()).unwrap();
        let original = std::fs::read(&path).unwrap();
        let opts = LoadOptions::default();

        // Bad magic.
        let mut bytes = original.clone();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path, &opts), Err(SnapshotError::BadMagic)));

        // Future version.
        let mut bytes = original.clone();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match load(&path, &opts) {
            Err(SnapshotError::UnsupportedVersion { found: 99, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }

        // Foreign endianness.
        let mut bytes = original.clone();
        bytes[12..16].copy_from_slice(&0x0403_0201u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path, &opts), Err(SnapshotError::BadEndian)));

        // Truncated file.
        std::fs::write(&path, &original[..original.len() - 3]).unwrap();
        match load(&path, &opts) {
            Err(SnapshotError::Truncated { .. }) => {}
            other => panic!("expected truncation error, got {other:?}"),
        }

        // Flipped payload byte → payload checksum.
        let mut bytes = original.clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match load(&path, &opts) {
            Err(SnapshotError::ChecksumMismatch {
                what: "payload", ..
            }) => {}
            other => panic!("expected payload checksum error, got {other:?}"),
        }

        // Flipped table byte → table checksum.
        let mut bytes = original.clone();
        bytes[HEADER_LEN as usize + 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match load(&path, &opts) {
            Err(SnapshotError::ChecksumMismatch {
                what: "section table",
                ..
            }) => {}
            other => panic!("expected table checksum error, got {other:?}"),
        }

        // Error kinds are stable tags.
        assert_eq!(SnapshotError::BadMagic.kind(), "bad_magic");
        assert_eq!(
            SnapshotError::UnsupportedVersion {
                found: 9,
                supported: 1
            }
            .kind(),
            "bad_version"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_instance_round_trips() {
        let q = parse_query("R(x,y)").unwrap();
        let frozen = Database::for_query(&q).freeze();
        let path = tmp("empty.snap");
        write(&path, &frozen, &WriteOptions::default()).unwrap();
        // An empty instance still has a header, table and schema, so Auto
        // can mmap it; Buffered must work too.
        for mode in [LoadMode::Auto, LoadMode::Buffered] {
            let snap = load(
                &path,
                &LoadOptions {
                    mode,
                    verify_payload: true,
                },
            )
            .unwrap();
            assert!(snap.db.is_empty());
            assert_eq!(snap.db.schema().len(), 1);
        }
        std::fs::remove_file(&path).ok();
    }
}
