//! String-to-constant interning for readable gadget constructions.
//!
//! The paper's reductions use structured constant names such as `⟨ab⟩_v`,
//! `x_i^j` or `a'_j`. Gadget code builds these names as strings and interns
//! them here, which keeps the constructions close to the paper's notation
//! while the database only ever sees opaque [`Constant`] values.

use crate::tuple::Constant;
use std::collections::HashMap;

/// An interner mapping string labels to fresh [`Constant`] values.
#[derive(Clone, Debug, Default)]
pub struct ConstPool {
    by_label: HashMap<String, Constant>,
    labels: Vec<String>,
}

impl ConstPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `label`, returning the same constant for the same label.
    pub fn intern(&mut self, label: impl AsRef<str>) -> Constant {
        let label = label.as_ref();
        if let Some(&c) = self.by_label.get(label) {
            return c;
        }
        let c = Constant(self.labels.len() as u64);
        self.by_label.insert(label.to_string(), c);
        self.labels.push(label.to_string());
        c
    }

    /// Returns the label of a constant previously produced by this pool.
    pub fn label(&self, c: Constant) -> Option<&str> {
        self.labels.get(c.0 as usize).map(|s| s.as_str())
    }

    /// Returns the constant for `label` if it was interned before.
    pub fn lookup(&self, label: impl AsRef<str>) -> Option<Constant> {
        self.by_label.get(label.as_ref()).copied()
    }

    /// Allocates a fresh anonymous constant, guaranteed distinct from every
    /// interned label.
    pub fn fresh(&mut self, hint: &str) -> Constant {
        let mut i = 0usize;
        loop {
            let candidate = format!("{hint}#{i}");
            if !self.by_label.contains_key(&candidate) {
                return self.intern(candidate);
            }
            i += 1;
        }
    }

    /// Number of interned constants.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = ConstPool::new();
        let a = pool.intern("a");
        let a2 = pool.intern("a");
        let b = pool.intern("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
    }

    #[test]
    fn labels_round_trip() {
        let mut pool = ConstPool::new();
        let ab = pool.intern("<ab>_v");
        assert_eq!(pool.label(ab), Some("<ab>_v"));
        assert_eq!(pool.lookup("<ab>_v"), Some(ab));
        assert_eq!(pool.lookup("missing"), None);
        assert_eq!(pool.label(Constant(99)), None);
    }

    #[test]
    fn fresh_constants_never_collide() {
        let mut pool = ConstPool::new();
        pool.intern("extra#0");
        let f0 = pool.fresh("extra");
        let f1 = pool.fresh("extra");
        assert_ne!(f0, f1);
        assert_ne!(pool.lookup("extra#0"), Some(f0));
    }
}
