//! Shared-backing typed arenas.
//!
//! [`FrozenDb`](crate::FrozenDb)'s CSR arenas are flat arrays of plain
//! fixed-width values. [`Arena<T>`] abstracts over *where those arrays
//! live*: an owned `Vec<T>` (the shape [`crate::Database::freeze`]
//! produces) or a typed window into a shared
//! immutable byte buffer — a heap buffer read from a snapshot file, or a
//! private read-only `mmap` of one ([`crate::snapshot`]). Either way the
//! arena dereferences to `&[T]`, so the solve path is oblivious to the
//! backing.
//!
//! Soundness rests on three invariants, enforced at construction:
//!
//! * element types are [`Pod`]: `Copy`, `'static`, with a fixed layout
//!   (`#[repr(transparent)]` newtypes over `u32`/`u64`) and no invalid bit
//!   patterns beyond what the snapshot loader validates;
//! * byte windows are bounds- and alignment-checked against the backing
//!   buffer before the typed slice is formed;
//! * backings are immutable and refcounted (`Arc`), so the base pointer a
//!   window was cut from stays valid and unchanged for the arena's life.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Marker for plain-old-data element types that may live in snapshot-backed
/// byte buffers. Sealed by construction: implemented only for the primitive
/// widths the CSR arenas use and their `#[repr(transparent)]` newtypes.
///
/// # Safety
///
/// Implementors guarantee `Self` has the exact size and alignment of the
/// primitive it wraps and that every bit pattern of that primitive is a
/// valid `Self`.
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for crate::tuple::Constant {}
unsafe impl Pod for crate::tuple::TupleId {}
unsafe impl Pod for cq::RelId {}

/// A read-only memory mapping of a file (unix only; callers fall back to
/// buffered reads elsewhere or when mapping fails).
///
/// Declared here rather than pulling in a crate: the build environment is
/// offline (see `vendor/README.md`), and the repo's precedent for tiny
/// platform shims is raw `extern "C"` declarations (`server::eventloop`
/// does the same for epoll).
#[cfg(unix)]
pub struct Mmap {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

#[cfg(unix)]
mod mmap_ffi {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x02;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

#[cfg(unix)]
impl Mmap {
    /// Maps `len` bytes of `file` read-only and private. Fails on zero
    /// length (POSIX rejects it) or when the kernel refuses the mapping.
    pub fn map(file: &std::fs::File, len: usize) -> std::io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        let ptr = unsafe {
            mmap_ffi::mmap(
                std::ptr::null_mut(),
                len,
                mmap_ffi::PROT_READ,
                mmap_ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        unsafe {
            mmap_ffi::munmap(self.ptr, self.len);
        }
    }
}

// The mapping is read-only and owned: nothing mutates through it, so shared
// references from any thread are fine.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

/// A heap buffer guaranteed 8-byte aligned: the buffered snapshot loader
/// reads file bytes into one of these so `u64` arenas can be viewed in
/// place, exactly like the page-aligned mmap path.
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Allocates a zeroed, 8-aligned buffer of `len` bytes.
    pub fn zeroed(len: usize) -> AlignedBytes {
        AlignedBytes {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// The buffer as mutable bytes (for filling from a reader).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }

    /// The buffer as bytes.
    pub fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

/// A shared immutable byte buffer arenas can be cut from.
#[derive(Clone)]
pub enum SharedBytes {
    /// Heap-resident (the buffered snapshot loader).
    Heap(Arc<AlignedBytes>),
    /// A read-only file mapping (the mmap snapshot loader).
    #[cfg(unix)]
    Mapped(Arc<Mmap>),
}

impl SharedBytes {
    /// The backing bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            SharedBytes::Heap(b) => b.as_slice(),
            #[cfg(unix)]
            SharedBytes::Mapped(m) => m.as_slice(),
        }
    }

    /// Whether the backing is a file mapping (vs. heap-resident).
    pub fn is_mapped(&self) -> bool {
        match self {
            SharedBytes::Heap(_) => false,
            #[cfg(unix)]
            SharedBytes::Mapped(_) => true,
        }
    }
}

enum Backing<T> {
    /// An owned vector, shared so clones are cheap and the data pointer is
    /// stable for the arena's lifetime.
    Owned(Arc<Vec<T>>),
    /// A window into a shared byte buffer.
    Bytes(SharedBytes),
}

impl<T> Clone for Backing<T> {
    fn clone(&self) -> Self {
        match self {
            Backing::Owned(v) => Backing::Owned(Arc::clone(v)),
            Backing::Bytes(b) => Backing::Bytes(b.clone()),
        }
    }
}

/// A typed, immutable, shared-backing array; see the module docs. Derefs to
/// `&[T]` with no per-access branching: the element pointer is resolved once
/// at construction.
pub struct Arena<T: Pod> {
    ptr: *const T,
    len: usize,
    backing: Backing<T>,
}

impl<T: Pod> Arena<T> {
    /// Wraps an owned vector.
    pub fn from_vec(v: Vec<T>) -> Arena<T> {
        let v = Arc::new(v);
        Arena {
            ptr: v.as_ptr(),
            len: v.len(),
            backing: Backing::Owned(v),
        }
    }

    /// Cuts a typed window of `len` elements starting at `byte_offset` out
    /// of `bytes`. Fails (with a reason) on out-of-bounds or misaligned
    /// windows — snapshot loading surfaces this as a structured error
    /// rather than corrupting memory.
    pub fn from_bytes(
        bytes: SharedBytes,
        byte_offset: usize,
        len: usize,
    ) -> Result<Arena<T>, &'static str> {
        let elem = std::mem::size_of::<T>();
        let byte_len = len.checked_mul(elem).ok_or("section length overflows")?;
        let slice = bytes.as_slice();
        let end = byte_offset
            .checked_add(byte_len)
            .ok_or("section range overflows")?;
        if end > slice.len() {
            return Err("section range exceeds file length");
        }
        let ptr = unsafe { slice.as_ptr().add(byte_offset) };
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return Err("section offset is misaligned for its element type");
        }
        Ok(Arena {
            ptr: ptr as *const T,
            len,
            backing: Backing::Bytes(bytes),
        })
    }

    /// Whether the arena lives in a file mapping.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            Backing::Owned(_) => false,
            Backing::Bytes(b) => b.is_mapped(),
        }
    }
}

impl<T: Pod> Default for Arena<T> {
    fn default() -> Self {
        Arena::from_vec(Vec::new())
    }
}

impl<T: Pod> Clone for Arena<T> {
    fn clone(&self) -> Self {
        Arena {
            ptr: self.ptr,
            len: self.len,
            backing: self.backing.clone(),
        }
    }
}

impl<T: Pod> Deref for Arena<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Pod> From<Vec<T>> for Arena<T> {
    fn from(v: Vec<T>) -> Self {
        Arena::from_vec(v)
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: Pod + PartialEq> PartialEq for Arena<T> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

// The backing is immutable and refcounted; `ptr` is derived from it and
// never outlives it, so the arena is as thread-safe as `&[T]`.
unsafe impl<T: Pod + Send + Sync> Send for Arena<T> {}
unsafe impl<T: Pod + Send + Sync> Sync for Arena<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn owned_arena_round_trips_and_clones_share() {
        let a = Arena::from_vec(vec![1u32, 2, 3]);
        assert_eq!(&*a, &[1, 2, 3]);
        let b = a.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert!(!a.is_mapped());
    }

    #[test]
    fn byte_arena_checks_bounds_and_alignment() {
        let mut heap = AlignedBytes::zeroed(24);
        heap.as_mut_slice().copy_from_slice(&[
            1, 0, 0, 0, 0, 0, 0, 0, //
            2, 0, 0, 0, 0, 0, 0, 0, //
            3, 0, 0, 0, 0, 0, 0, 0,
        ]);
        let bytes = SharedBytes::Heap(Arc::new(heap));
        let a: Arena<u64> = Arena::from_bytes(bytes.clone(), 0, 3).unwrap();
        assert_eq!(&*a, &[1u64, 2, 3]);
        // Window past the end.
        assert!(Arena::<u64>::from_bytes(bytes.clone(), 8, 3).is_err());
        // Misaligned offset for u64.
        assert!(Arena::<u64>::from_bytes(bytes, 4, 1).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn mmap_round_trips_file_bytes() {
        let dir = std::env::temp_dir().join(format!("resil-arena-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.bin");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            f.write_all(&[5u8, 6, 7, 8]).unwrap();
        }
        let f = std::fs::File::open(&path).unwrap();
        let m = Mmap::map(&f, 4).unwrap();
        assert_eq!(m.as_slice(), &[5, 6, 7, 8]);
        drop(m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_length_map_is_rejected() {
        #[cfg(unix)]
        {
            let dir = std::env::temp_dir();
            let path = dir.join(format!("resil-arena-empty-{}", std::process::id()));
            std::fs::File::create(&path).unwrap();
            let f = std::fs::File::open(&path).unwrap();
            assert!(Mmap::map(&f, 0).is_err());
            std::fs::remove_file(&path).ok();
        }
    }
}
