//! Compacted, immutable database instances.
//!
//! [`Database`] is built for incremental loading: its join index grows one
//! bucket `Vec` at a time as tuples arrive. [`FrozenDb`] is the query-phase
//! counterpart produced by [`Database::freeze`]: the per-relation tuple
//! lists and the per-relation/per-position bucket index are batch-built as
//! true CSR — a counting sort lays every bucket out in **one flat arena**
//! (`index_arena`), and each `(relation, position, constant)` probe resolves
//! to a `(start, len)` range into it. Freezing preserves [`TupleId`]s
//! verbatim, so contingency sets computed against a `FrozenDb` reference the
//! same tuples as the source database.
//!
//! Taking `&FrozenDb` in the solve path (instead of `&Database`) separates
//! the mutation phase from the query phase in the type system: once an
//! instance is frozen nothing can invalidate a compiled plan's assumptions
//! about it, which is what makes sharing one instance across the batch
//! solver's threads sound.
//!
//! # Storage backing
//!
//! Every flat array is an [`Arena`]: owned vectors when
//! built by [`Database::freeze`], or zero-copy windows into a snapshot file
//! when loaded by [`crate::snapshot`] (mmap or one aligned heap buffer). The
//! join index has two interchangeable representations behind `JoinIndex`:
//! hash maps per `(relation, position)` slot (what freezing builds — O(1)
//! probes, but pointer-rich and not serializable in place) and flat sorted
//! per-slot `(key, range)` arrays probed by binary search (what snapshots
//! store — loadable without rebuilding). Both return the *same slice of the
//! same arena* for every probe, so solve results are byte-identical across
//! representations.

use crate::arena::Arena;
use crate::fx::FxHashMap;
use crate::instance::Database;
use crate::store::TupleStore;
use crate::tuple::{Constant, TupleId};
use cq::{RelId, Schema};
use std::fmt;
use std::sync::OnceLock;

/// A bucket of the CSR join index: a `(start, len)` range into the arena.
/// During the counting-sort build, `start` doubles as the fill cursor (it is
/// rewound by `len` once the arena is filled), so one map per slot carries
/// the whole build.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BucketRange {
    pub(crate) start: u32,
    pub(crate) len: u32,
}

/// The `(relation, position, constant) → arena range` join index, in one of
/// two probe-equivalent representations; see the module docs.
#[derive(Clone, Debug)]
pub(crate) enum JoinIndex {
    /// One hash map per slot (built by [`Database::freeze`]).
    Hash(Vec<FxHashMap<Constant, BucketRange>>),
    /// Flat sorted per-slot arrays (loaded from snapshots): slot `s` owns
    /// entries `slot_offsets[s]..slot_offsets[s+1]` of the three parallel
    /// arrays, with `keys` ascending within each slot.
    Sorted {
        slot_offsets: Arena<u32>,
        keys: Arena<Constant>,
        starts: Arena<u32>,
        lens: Arena<u32>,
    },
}

impl JoinIndex {
    fn probe(&self, slot: usize, value: Constant) -> Option<BucketRange> {
        match self {
            JoinIndex::Hash(slots) => slots[slot].get(&value).copied(),
            JoinIndex::Sorted {
                slot_offsets,
                keys,
                starts,
                lens,
            } => {
                let lo = slot_offsets[slot] as usize;
                let hi = slot_offsets[slot + 1] as usize;
                match keys[lo..hi].binary_search(&value) {
                    Ok(i) => Some(BucketRange {
                        start: starts[lo + i],
                        len: lens[lo + i],
                    }),
                    Err(_) => None,
                }
            }
        }
    }

    /// Total number of `(constant → range)` entries across all slots.
    fn entries(&self) -> usize {
        match self {
            JoinIndex::Hash(slots) => slots.iter().map(|m| m.len()).sum(),
            JoinIndex::Sorted { keys, .. } => keys.len(),
        }
    }
}

/// An immutable, CSR-compacted database instance.
///
/// Produced by [`Database::freeze`] or loaded from an on-disk snapshot
/// ([`crate::snapshot`]); see the module docs. All read accessors mirror
/// [`Database`] and tuple ids are preserved, so the two stores are
/// interchangeable behind [`TupleStore`].
#[derive(Clone, Debug)]
pub struct FrozenDb {
    pub(crate) schema: Schema,
    /// Per tuple: its relation.
    pub(crate) tuple_rel: Arena<RelId>,
    /// Per tuple: offset of its values in `values_flat`.
    pub(crate) tuple_start: Arena<u32>,
    /// All tuple values, concatenated in tuple-id order.
    pub(crate) values_flat: Arena<Constant>,
    /// CSR tuple lists: `rel_tuples[rel_offsets[r]..rel_offsets[r+1]]` are
    /// the tuples of relation `r` in insertion order.
    pub(crate) rel_tuples: Arena<TupleId>,
    pub(crate) rel_offsets: Arena<u32>,
    /// The join index; see [`JoinIndex`].
    pub(crate) index: JoinIndex,
    /// The single flat arena holding every bucket of every slot.
    pub(crate) index_arena: Arena<TupleId>,
    /// Prefix sums of relation arities into the index slots.
    pub(crate) pos_base: Arena<u32>,
    /// Exact-match lookup: (relation, values) → id. Built lazily on the
    /// first [`FrozenDb::lookup`] — most solve paths never probe by value,
    /// so freezing does not pay for it.
    pub(crate) dedup: OnceLock<FxHashMap<(RelId, Vec<Constant>), TupleId>>,
}

impl FrozenDb {
    /// Batch-builds a frozen copy of `db`. Tuple ids are preserved.
    pub fn from_database(db: &Database) -> FrozenDb {
        let schema = db.schema().clone();
        let n = db.num_tuples();

        // Flat tuple arena, in id order.
        let mut tuple_rel = Vec::with_capacity(n);
        let mut tuple_start = Vec::with_capacity(n);
        let mut values_flat = Vec::new();
        for id in db.all_tuples() {
            let rel = db.relation_of(id);
            tuple_rel.push(rel);
            tuple_start.push(values_flat.len() as u32);
            values_flat.extend_from_slice(db.values_of(id));
        }

        // CSR per-relation tuple lists.
        let mut rel_offsets = Vec::with_capacity(schema.len() + 1);
        let mut rel_tuples = Vec::with_capacity(n);
        let mut pos_base = Vec::with_capacity(schema.len() + 1);
        let mut total_slots = 0u32;
        for rel in schema.relation_ids() {
            rel_offsets.push(rel_tuples.len() as u32);
            rel_tuples.extend_from_slice(db.tuples_of(rel));
            pos_base.push(total_slots);
            total_slots += schema.arity(rel) as u32;
        }
        rel_offsets.push(rel_tuples.len() as u32);
        pos_base.push(total_slots);

        // Counting sort of the join index into one flat arena, one bucket
        // map per slot. Pass 1 counts per-constant occurrences; the prefix
        // walk turns counts into arena ranges; pass 2 places tuple ids using
        // `start` as the fill cursor; the fix-up walk rewinds the cursors.
        // Scanning tuples in ascending id order both times keeps every
        // bucket in insertion order, exactly matching the incremental index
        // of `Database`.
        let mut slot_buckets: Vec<FxHashMap<Constant, BucketRange>> =
            vec![FxHashMap::default(); total_slots as usize];
        for id in db.all_tuples() {
            let base = pos_base[db.relation_of(id).index()] as usize;
            for (pos, &c) in db.values_of(id).iter().enumerate() {
                slot_buckets[base + pos]
                    .entry(c)
                    .or_insert(BucketRange { start: 0, len: 0 })
                    .len += 1;
            }
        }
        let mut next_start = 0u32;
        for buckets in &mut slot_buckets {
            for range in buckets.values_mut() {
                range.start = next_start;
                next_start += range.len;
            }
        }
        let mut index_arena = vec![TupleId(0); next_start as usize];
        for id in db.all_tuples() {
            let base = pos_base[db.relation_of(id).index()] as usize;
            for (pos, c) in db.values_of(id).iter().enumerate() {
                let range = slot_buckets[base + pos]
                    .get_mut(c)
                    .expect("constant counted in pass 1");
                index_arena[range.start as usize] = id;
                range.start += 1;
            }
        }
        for buckets in &mut slot_buckets {
            for range in buckets.values_mut() {
                range.start -= range.len;
            }
        }

        FrozenDb {
            schema,
            tuple_rel: tuple_rel.into(),
            tuple_start: tuple_start.into(),
            values_flat: values_flat.into(),
            rel_tuples: rel_tuples.into(),
            rel_offsets: rel_offsets.into(),
            index: JoinIndex::Hash(slot_buckets),
            index_arena: index_arena.into(),
            pos_base: pos_base.into(),
            dedup: OnceLock::new(),
        }
    }

    /// The schema of the instance.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of tuples.
    pub fn num_tuples(&self) -> usize {
        self.tuple_rel.len()
    }

    /// Whether any arena is backed by a file mapping (snapshot loaded with
    /// mmap) rather than resident heap memory.
    pub fn is_mapped(&self) -> bool {
        self.values_flat.is_mapped()
    }

    /// Resident size of the frozen instance in bytes: the CSR arena lengths
    /// times their element sizes, the join-index entries, the schema's
    /// interned relation names (both the declaration table and the by-name
    /// map), and — once built — the lazy exact-match dedup map with its
    /// owned key vectors. Mapped arenas count like owned ones: a byte-budget
    /// admission policy cares about address-space/page-cache pressure, not
    /// which allocator backs the bytes. Still an *estimate* (allocator slack
    /// and hash-table load factors are not modeled), but it is monotone in
    /// instance size and covers every O(n) structure the instance owns.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let index_entries = self.index.entries();
        let index_bytes = match &self.index {
            JoinIndex::Hash(_) => index_entries * size_of::<(Constant, BucketRange)>(),
            JoinIndex::Sorted { slot_offsets, .. } => {
                slot_offsets.len() * size_of::<u32>()
                    + index_entries * (size_of::<Constant>() + 2 * size_of::<u32>())
            }
        };
        // Interned relation names: each lives once in the declaration table
        // and once as a key of the name → id map, plus the table entries.
        let schema_bytes: usize = self
            .schema
            .relation_ids()
            .map(|r| {
                2 * self.schema.name(r).len()
                    + 2 * size_of::<String>()
                    + size_of::<usize>() // arity in the declaration
                    + size_of::<RelId>() // map value
            })
            .sum();
        let dedup_bytes: usize = match self.dedup.get() {
            Some(map) => map
                .iter()
                .map(|((_, values), _)| {
                    values.len() * size_of::<Constant>()
                        + size_of::<(RelId, Vec<Constant>, TupleId)>()
                })
                .sum(),
            None => 0,
        };
        self.tuple_rel.len() * size_of::<RelId>()
            + self.tuple_start.len() * size_of::<u32>()
            + self.values_flat.len() * size_of::<Constant>()
            + self.rel_tuples.len() * size_of::<TupleId>()
            + self.rel_offsets.len() * size_of::<u32>()
            + index_bytes
            + self.index_arena.len() * size_of::<TupleId>()
            + self.pos_base.len() * size_of::<u32>()
            + schema_bytes
            + dedup_bytes
    }

    /// Whether the instance holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuple_rel.is_empty()
    }

    /// The relation a tuple belongs to.
    #[inline]
    pub fn relation_of(&self, id: TupleId) -> RelId {
        self.tuple_rel[id.index()]
    }

    /// The values of a tuple.
    #[inline]
    pub fn values_of(&self, id: TupleId) -> &[Constant] {
        let start = self.tuple_start[id.index()] as usize;
        let arity = self.schema.arity(self.tuple_rel[id.index()]);
        &self.values_flat[start..start + arity]
    }

    /// Ids of all tuples of `rel`, in insertion order.
    #[inline]
    pub fn tuples_of(&self, rel: RelId) -> &[TupleId] {
        let lo = self.rel_offsets[rel.index()] as usize;
        let hi = self.rel_offsets[rel.index() + 1] as usize;
        &self.rel_tuples[lo..hi]
    }

    /// Tuples of `rel` whose attribute at `pos` equals `value`, as a slice of
    /// the flat index arena.
    #[inline]
    pub fn tuples_matching(&self, rel: RelId, pos: usize, value: Constant) -> &[TupleId] {
        let slot = self.pos_base[rel.index()] as usize + pos;
        match self.index.probe(slot, value) {
            Some(range) => {
                &self.index_arena[range.start as usize..(range.start + range.len) as usize]
            }
            None => &[],
        }
    }

    /// The join index flattened to sorted per-slot arrays — the snapshot
    /// wire representation (`slot_offsets`, parallel `keys`/`starts`/`lens`
    /// with keys ascending per slot). Cheap for an already-`Sorted` index;
    /// sorts each slot's hash entries otherwise.
    pub(crate) fn sorted_index(&self) -> (Vec<u32>, Vec<Constant>, Vec<u32>, Vec<u32>) {
        match &self.index {
            JoinIndex::Sorted {
                slot_offsets,
                keys,
                starts,
                lens,
            } => (
                slot_offsets.to_vec(),
                keys.to_vec(),
                starts.to_vec(),
                lens.to_vec(),
            ),
            JoinIndex::Hash(slots) => {
                let entries: usize = slots.iter().map(|m| m.len()).sum();
                let mut slot_offsets = Vec::with_capacity(slots.len() + 1);
                let mut keys = Vec::with_capacity(entries);
                let mut starts = Vec::with_capacity(entries);
                let mut lens = Vec::with_capacity(entries);
                let mut sorted: Vec<(Constant, BucketRange)> = Vec::new();
                slot_offsets.push(0u32);
                for map in slots {
                    sorted.clear();
                    sorted.extend(map.iter().map(|(&c, &r)| (c, r)));
                    sorted.sort_unstable_by_key(|&(c, _)| c);
                    for &(c, r) in &sorted {
                        keys.push(c);
                        starts.push(r.start);
                        lens.push(r.len);
                    }
                    slot_offsets.push(keys.len() as u32);
                }
                (slot_offsets, keys, starts, lens)
            }
        }
    }

    /// Looks up a specific tuple. The exact-match map is built lazily on
    /// the first call (and then cached), so solve paths that never probe by
    /// value do not pay for it at freeze time.
    pub fn lookup(&self, rel: RelId, values: &[Constant]) -> Option<TupleId> {
        let dedup = self.dedup.get_or_init(|| {
            (0..self.num_tuples() as u32)
                .map(|i| {
                    let id = TupleId(i);
                    ((self.relation_of(id), self.values_of(id).to_vec()), id)
                })
                .collect()
        });
        // The dedup key owns its values; borrow-keyed lookup would need a
        // custom Equivalent impl, so allocate the small probe key.
        dedup.get(&(rel, values.to_vec())).copied()
    }

    /// Thaws back into a mutable [`Database`] (tuple ids are preserved
    /// because insertion replays in id order).
    pub fn thaw(&self) -> Database {
        let mut out = Database::new(self.schema.clone());
        for id in 0..self.num_tuples() as u32 {
            out.insert(self.relation_of(TupleId(id)), self.values_of(TupleId(id)));
        }
        out
    }
}

impl TupleStore for FrozenDb {
    fn schema(&self) -> &Schema {
        FrozenDb::schema(self)
    }

    fn num_tuples(&self) -> usize {
        FrozenDb::num_tuples(self)
    }

    fn relation_of(&self, id: TupleId) -> RelId {
        FrozenDb::relation_of(self, id)
    }

    fn values_of(&self, id: TupleId) -> &[Constant] {
        FrozenDb::values_of(self, id)
    }

    fn tuples_of(&self, rel: RelId) -> &[TupleId] {
        FrozenDb::tuples_of(self, rel)
    }

    fn tuples_matching(&self, rel: RelId, pos: usize, value: Constant) -> &[TupleId] {
        FrozenDb::tuples_matching(self, rel, pos, value)
    }

    fn lookup_values(&self, rel: RelId, values: &[Constant]) -> Option<TupleId> {
        FrozenDb::lookup(self, rel, values)
    }
}

impl fmt::Display for FrozenDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut lines: Vec<String> = Vec::new();
        for rel in self.schema.relation_ids() {
            let mut rows: Vec<&[Constant]> = self
                .tuples_of(rel)
                .iter()
                .map(|&id| self.values_of(id))
                .collect();
            rows.sort();
            for row in rows {
                let vals: Vec<String> = row.iter().map(|c| c.to_string()).collect();
                lines.push(format!("{}({})", self.schema.name(rel), vals.join(",")));
            }
        }
        write!(f, "{}", lines.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    fn sample_db() -> Database {
        let q = parse_query("R(x,y), S(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        db.insert_named("R", &[3, 3]);
        db.insert_named("S", &[1, 2]);
        db.insert_named("S", &[2, 1]);
        db
    }

    #[test]
    fn freeze_preserves_tuples_and_ids() {
        let db = sample_db();
        let frozen = db.freeze();
        assert_eq!(frozen.num_tuples(), db.num_tuples());
        assert!(!frozen.is_empty());
        for id in db.all_tuples() {
            assert_eq!(frozen.relation_of(id), db.relation_of(id));
            assert_eq!(frozen.values_of(id), db.values_of(id));
        }
        for rel in db.schema().relation_ids() {
            assert_eq!(frozen.tuples_of(rel), db.tuples_of(rel));
        }
    }

    #[test]
    fn csr_index_matches_incremental_index() {
        let db = sample_db();
        let frozen = db.freeze();
        for rel in db.schema().relation_ids() {
            for pos in 0..db.schema().arity(rel) {
                for value in 0..5u64 {
                    assert_eq!(
                        frozen.tuples_matching(rel, pos, Constant(value)),
                        db.tuples_matching(rel, pos, Constant(value)),
                        "relation {} position {pos} value {value}",
                        db.schema().name(rel)
                    );
                }
            }
        }
    }

    #[test]
    fn sorted_index_probes_identically() {
        let db = sample_db();
        let frozen = db.freeze();
        // Rebuild the same instance with the sorted (snapshot-shaped) index
        // and check every probe returns the identical arena slice.
        let (slot_offsets, keys, starts, lens) = frozen.sorted_index();
        let mut sorted = frozen.clone();
        sorted.index = JoinIndex::Sorted {
            slot_offsets: slot_offsets.into(),
            keys: keys.into(),
            starts: starts.into(),
            lens: lens.into(),
        };
        for rel in db.schema().relation_ids() {
            for pos in 0..db.schema().arity(rel) {
                for value in 0..6u64 {
                    assert_eq!(
                        frozen.tuples_matching(rel, pos, Constant(value)),
                        sorted.tuples_matching(rel, pos, Constant(value)),
                    );
                }
            }
        }
        assert_eq!(frozen.index.entries(), sorted.index.entries());
    }

    #[test]
    fn index_arena_is_one_flat_allocation() {
        let db = sample_db();
        let frozen = db.freeze();
        // Every tuple contributes one arena entry per attribute position.
        let expected: usize = db.all_tuples().map(|t| db.values_of(t).len()).sum();
        assert_eq!(frozen.index_arena.len(), expected);
    }

    #[test]
    fn lookup_and_display_match_database() {
        let db = sample_db();
        let frozen = db.freeze();
        let r = db.schema().relation_id("R").unwrap();
        let expect = db.lookup(r, &[2, 3]);
        assert!(expect.is_some());
        assert_eq!(frozen.lookup(r, &[Constant(2), Constant(3)]), expect);
        assert_eq!(frozen.lookup(r, &[Constant(9), Constant(9)]), None);
        assert_eq!(frozen.to_string(), db.to_string());
    }

    #[test]
    fn resident_bytes_pins_the_accounting() {
        use std::mem::size_of;
        let db = sample_db();
        let frozen = db.freeze();
        // 5 tuples of arity 2, schema R/S: pin the exact formula so quota
        // accounting changes are deliberate.
        let arena_bytes = 5 * size_of::<RelId>()      // tuple_rel
            + 5 * size_of::<u32>()                    // tuple_start
            + 10 * size_of::<Constant>()              // values_flat
            + 5 * size_of::<TupleId>()                // rel_tuples
            + 3 * size_of::<u32>()                    // rel_offsets
            + 10 * size_of::<TupleId>()               // index_arena
            + 3 * size_of::<u32>(); // pos_base
        let index_bytes = frozen.index.entries() * size_of::<(Constant, BucketRange)>();
        // Per relation: two copies of the 1-byte name ("R"/"S") plus the
        // String headers, arity and id-map entries.
        let per_name =
            2 * "R".len() + 2 * size_of::<String>() + size_of::<usize>() + size_of::<RelId>();
        let schema_bytes: usize = 2 * per_name;
        assert_eq!(
            frozen.resident_bytes(),
            arena_bytes + index_bytes + schema_bytes
        );

        // Building the lazy dedup map must grow the resident estimate: the
        // map owns one key vector per tuple.
        let before = frozen.resident_bytes();
        let r = frozen.schema().relation_id("R").unwrap();
        frozen.lookup(r, &[Constant(1), Constant(2)]);
        let after = frozen.resident_bytes();
        let dedup_bytes: usize =
            5 * (2 * size_of::<Constant>() + size_of::<(RelId, Vec<Constant>, TupleId)>());
        assert_eq!(after, before + dedup_bytes);
    }

    #[test]
    fn resident_bytes_counts_relation_names() {
        // Same tuples, longer relation names => strictly larger footprint.
        let q_short = parse_query("R(x,y)").unwrap();
        let q_long = parse_query("RelationWithALongName(x,y)").unwrap();
        let mut short = Database::for_query(&q_short);
        let mut long = Database::for_query(&q_long);
        short.insert_named("R", &[1, 2]);
        long.insert_named("RelationWithALongName", &[1, 2]);
        assert!(long.freeze().resident_bytes() > short.freeze().resident_bytes());
    }

    #[test]
    fn thaw_round_trips() {
        let db = sample_db();
        let thawed = db.freeze().thaw();
        assert_eq!(thawed.num_tuples(), db.num_tuples());
        for id in db.all_tuples() {
            assert_eq!(thawed.values_of(id), db.values_of(id));
            assert_eq!(thawed.relation_of(id), db.relation_of(id));
        }
    }

    #[test]
    fn empty_database_freezes() {
        let q = parse_query("R(x,y)").unwrap();
        let frozen = Database::for_query(&q).freeze();
        assert!(frozen.is_empty());
        let r = frozen.schema().relation_id("R").unwrap();
        assert!(frozen.tuples_of(r).is_empty());
        assert!(frozen.tuples_matching(r, 0, Constant(1)).is_empty());
    }
}
