//! Database instances.
//!
//! Storage is flat and index-dense: tuple values live in one contiguous
//! arena (`values_flat`), each tuple is `(relation, start offset)`, and the
//! join index is a per-relation, per-position array of constant buckets, so
//! an index probe hashes a single `u64` and returns a **borrowed** slice of
//! tuple ids — the witness enumerator never copies candidate lists.

use crate::fx::FxHashMap;
use crate::tuple::{Constant, TupleId};
use cq::{Query, RelId, Schema};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// A stored tuple: its relation and the offset of its values in the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct StoredTuple {
    relation: RelId,
    start: u32,
}

/// One attribute position of one relation: constant -> ids of the tuples
/// holding that constant at this position (insertion order).
#[derive(Clone, Debug, Default)]
struct PositionIndex {
    buckets: FxHashMap<Constant, Vec<TupleId>>,
}

/// A finite database instance over a [`Schema`].
///
/// Tuples are identified by dense [`TupleId`]s assigned at insertion time
/// (duplicates are deduplicated and return the original id). Following the
/// paper we treat `D` as the disjoint union of its relations, so `|D|` is the
/// total number of tuples.
#[derive(Clone, Debug, Default)]
pub struct Database {
    schema: Schema,
    tuples: Vec<StoredTuple>,
    /// All tuple values, concatenated in insertion order.
    values_flat: Vec<Constant>,
    /// Exact-match lookup: (relation, values) -> id.
    dedup: FxHashMap<(RelId, Vec<Constant>), TupleId>,
    /// Per relation, the ids of its tuples in insertion order.
    by_relation: Vec<Vec<TupleId>>,
    /// Flattened join index: `index[pos_base[rel] + pos]` is the bucket map
    /// of attribute `pos` of `rel`.
    index: Vec<PositionIndex>,
    /// Prefix sums of relation arities into `index`.
    pos_base: Vec<u32>,
}

impl Database {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        let by_relation = vec![Vec::new(); schema.len()];
        let mut pos_base = Vec::with_capacity(schema.len() + 1);
        let mut total = 0u32;
        for rel in schema.relation_ids() {
            pos_base.push(total);
            total += schema.arity(rel) as u32;
        }
        pos_base.push(total);
        Database {
            schema,
            tuples: Vec::new(),
            values_flat: Vec::new(),
            dedup: FxHashMap::default(),
            by_relation,
            index: vec![PositionIndex::default(); total as usize],
            pos_base,
        }
    }

    /// Creates an empty database using the schema of `q`.
    pub fn for_query(q: &Query) -> Self {
        Database::new(q.schema().clone())
    }

    /// The schema of the database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Inserts a tuple, returning its id. Inserting the same tuple twice
    /// returns the original id.
    ///
    /// # Panics
    /// Panics if the arity does not match the relation declaration.
    pub fn insert<C: Into<Constant> + Copy>(&mut self, rel: RelId, values: &[C]) -> TupleId {
        let values: Vec<Constant> = values.iter().map(|&c| c.into()).collect();
        assert_eq!(
            values.len(),
            self.schema.arity(rel),
            "arity mismatch inserting into {}",
            self.schema.name(rel)
        );
        let key = (rel, values);
        if let Some(&id) = self.dedup.get(&key) {
            return id;
        }
        let id = TupleId(self.tuples.len() as u32);
        let base = self.pos_base[rel.index()] as usize;
        for (pos, &c) in key.1.iter().enumerate() {
            self.index[base + pos]
                .buckets
                .entry(c)
                .or_default()
                .push(id);
        }
        self.by_relation[rel.index()].push(id);
        let start = self.values_flat.len() as u32;
        self.values_flat.extend_from_slice(&key.1);
        self.dedup.insert(key, id);
        self.tuples.push(StoredTuple {
            relation: rel,
            start,
        });
        id
    }

    /// Convenience: inserts into the relation named `rel_name`.
    ///
    /// # Panics
    /// Panics if the relation does not exist in the schema.
    pub fn insert_named<C: Into<Constant> + Copy>(
        &mut self,
        rel_name: &str,
        values: &[C],
    ) -> TupleId {
        let rel = self
            .schema
            .relation_id(rel_name)
            .unwrap_or_else(|| panic!("unknown relation {rel_name}"));
        self.insert(rel, values)
    }

    /// Total number of tuples (`n = |D|`).
    pub fn num_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the database holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The relation a tuple belongs to.
    pub fn relation_of(&self, id: TupleId) -> RelId {
        self.tuples[id.index()].relation
    }

    /// The values of a tuple.
    #[inline]
    pub fn values_of(&self, id: TupleId) -> &[Constant] {
        let t = self.tuples[id.index()];
        let start = t.start as usize;
        &self.values_flat[start..start + self.schema.arity(t.relation)]
    }

    /// Ids of all tuples of `rel`, in insertion order.
    pub fn tuples_of(&self, rel: RelId) -> &[TupleId] {
        &self.by_relation[rel.index()]
    }

    /// Ids of all tuples.
    pub fn all_tuples(&self) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.tuples.len() as u32).map(TupleId)
    }

    /// Looks up a specific tuple.
    pub fn lookup<C: Into<Constant> + Copy>(&self, rel: RelId, values: &[C]) -> Option<TupleId> {
        let values: Vec<Constant> = values.iter().map(|&c| c.into()).collect();
        self.dedup.get(&(rel, values)).copied()
    }

    /// Whether the database contains the given tuple.
    pub fn contains<C: Into<Constant> + Copy>(&self, rel: RelId, values: &[C]) -> bool {
        self.lookup(rel, values).is_some()
    }

    /// Tuples of `rel` whose attribute at `pos` equals `value`, as a borrowed
    /// slice from the per-relation, per-position bucket index.
    #[inline]
    pub fn tuples_matching(&self, rel: RelId, pos: usize, value: Constant) -> &[TupleId] {
        self.index[self.pos_base[rel.index()] as usize + pos]
            .buckets
            .get(&value)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The active domain: every constant occurring in some tuple.
    pub fn active_domain(&self) -> BTreeSet<Constant> {
        self.values_flat.iter().copied().collect()
    }

    /// Removes the given tuples, returning a new database. Tuple ids are
    /// *not* preserved — use this for end-state checks, not for bookkeeping
    /// against the original ids.
    pub fn without(&self, deleted: &HashSet<TupleId>) -> Database {
        let mut out = Database::new(self.schema.clone());
        for id in self.all_tuples() {
            if !deleted.contains(&id) {
                out.insert(self.relation_of(id), self.values_of(id));
            }
        }
        out
    }

    /// Returns the ids of all tuples whose relation is *endogenous with
    /// respect to `q`*, i.e. the relation has at least one endogenous atom in
    /// `q`. These are the tuples a contingency set may delete.
    pub fn endogenous_tuples(&self, q: &Query) -> Vec<TupleId> {
        let mask = self.endogenous_mask(q);
        self.all_tuples().filter(|&id| mask[id.index()]).collect()
    }

    /// Dense variant of [`Database::endogenous_tuples`]: `mask[t]` is `true`
    /// iff tuple `t` may be deleted by a contingency set for `q`.
    pub fn endogenous_mask(&self, q: &Query) -> Vec<bool> {
        // Relations are matched by name because query and database may hold
        // structurally identical but separately-built schemas.
        let mut endo_rel = vec![false; self.schema.len()];
        for i in q.endogenous_atoms() {
            let name = q.schema().name(q.atom(i).relation);
            if let Some(r) = self.schema.relation_id(name) {
                endo_rel[r.index()] = true;
            }
        }
        self.tuples
            .iter()
            .map(|t| endo_rel[t.relation.index()])
            .collect()
    }

    /// Batch-builds an immutable, CSR-compacted copy of this instance for
    /// the query phase (see [`crate::FrozenDb`]). Tuple ids are preserved, so
    /// contingency sets computed on the frozen copy reference the same
    /// tuples.
    pub fn freeze(&self) -> crate::FrozenDb {
        crate::FrozenDb::from_database(self)
    }

    /// Pretty, deterministic rendering of the instance (sorted by relation
    /// then values); used by examples and debugging output.
    pub fn display_sorted(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for rel in self.schema.relation_ids() {
            let mut rows: Vec<&[Constant]> = self
                .tuples_of(rel)
                .iter()
                .map(|&id| self.values_of(id))
                .collect();
            rows.sort();
            for row in rows {
                let vals: Vec<String> = row.iter().map(|c| c.to_string()).collect();
                lines.push(format!("{}({})", self.schema.name(rel), vals.join(",")));
            }
        }
        lines.join("\n")
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_sorted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    fn chain_db() -> (cq::Query, Database) {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        let r = db.schema().relation_id("R").unwrap();
        db.insert(r, &[1, 2]);
        db.insert(r, &[2, 3]);
        db.insert(r, &[3, 3]);
        (q, db)
    }

    #[test]
    fn insert_and_lookup() {
        let (_, db) = chain_db();
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.num_tuples(), 3);
        assert!(db.contains(r, &[1, 2]));
        assert!(!db.contains(r, &[2, 1]));
        assert_eq!(db.tuples_of(r).len(), 3);
        assert_eq!(db.values_of(TupleId(0)), &[Constant(1), Constant(2)]);
        assert_eq!(db.relation_of(TupleId(0)), r);
        assert!(!db.is_empty());
    }

    #[test]
    fn duplicate_insert_returns_same_id() {
        let q = parse_query("R(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        let r = db.schema().relation_id("R").unwrap();
        let a = db.insert(r, &[1, 2]);
        let b = db.insert(r, &[1, 2]);
        assert_eq!(a, b);
        assert_eq!(db.num_tuples(), 1);
    }

    #[test]
    fn index_lookup_by_position() {
        let (_, db) = chain_db();
        let r = db.schema().relation_id("R").unwrap();
        let hits = db.tuples_matching(r, 1, Constant(3));
        assert_eq!(hits.len(), 2); // R(2,3) and R(3,3)
        let none = db.tuples_matching(r, 0, Constant(9));
        assert!(none.is_empty());
    }

    #[test]
    fn index_is_partitioned_by_relation_and_position() {
        // Two relations sharing constants must not leak into each other's
        // buckets, and neither must the two positions of one relation.
        let q = parse_query("R(x,y), S(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        let r = db.schema().relation_id("R").unwrap();
        let s = db.schema().relation_id("S").unwrap();
        let t_r = db.insert(r, &[1, 2]);
        let t_s = db.insert(s, &[1, 2]);
        db.insert(s, &[2, 1]);
        assert_eq!(db.tuples_matching(r, 0, Constant(1)), &[t_r]);
        assert_eq!(db.tuples_matching(s, 0, Constant(1)), &[t_s]);
        assert_eq!(db.tuples_matching(r, 1, Constant(1)), &[] as &[TupleId]);
        assert_eq!(db.tuples_matching(s, 1, Constant(1)).len(), 1);
    }

    #[test]
    fn active_domain_collects_all_constants() {
        let (_, db) = chain_db();
        let dom = db.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Constant(1)));
        assert!(dom.contains(&Constant(3)));
    }

    #[test]
    fn without_removes_tuples() {
        let (_, db) = chain_db();
        let deleted: HashSet<TupleId> = [TupleId(1)].into_iter().collect();
        let smaller = db.without(&deleted);
        assert_eq!(smaller.num_tuples(), 2);
        let r = smaller.schema().relation_id("R").unwrap();
        assert!(!smaller.contains(r, &[2, 3]));
        assert!(smaller.contains(r, &[1, 2]));
    }

    #[test]
    fn endogenous_tuples_respect_exogenous_relations() {
        let q = parse_query("A(x), R^x(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("A", &[1]);
        db.insert_named("R", &[1, 2]);
        let endo = db.endogenous_tuples(&q);
        assert_eq!(endo.len(), 1);
        let a = db.schema().relation_id("A").unwrap();
        assert_eq!(db.relation_of(endo[0]), a);
        let mask = db.endogenous_mask(&q);
        assert_eq!(mask, vec![true, false]);
    }

    #[test]
    fn insert_named_panics_on_unknown_relation() {
        let q = parse_query("A(x)").unwrap();
        let mut db = Database::for_query(&q);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            db.insert_named("Z", &[1]);
        }));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let q = parse_query("R(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        let r = db.schema().relation_id("R").unwrap();
        db.insert(r, &[1]);
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let (_, db) = chain_db();
        let s = db.to_string();
        assert_eq!(s, "R(1,2)\nR(2,3)\nR(3,3)");
    }
}
