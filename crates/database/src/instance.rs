//! Database instances.

use crate::tuple::{Constant, TupleId};
use cq::{Query, RelId, Schema};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A stored tuple: its relation and its values.
#[derive(Clone, Debug, PartialEq, Eq)]
struct StoredTuple {
    relation: RelId,
    values: Vec<Constant>,
}

/// A finite database instance over a [`Schema`].
///
/// Tuples are identified by dense [`TupleId`]s assigned at insertion time
/// (duplicates are deduplicated and return the original id). Following the
/// paper we treat `D` as the disjoint union of its relations, so `|D|` is the
/// total number of tuples.
#[derive(Clone, Debug, Default)]
pub struct Database {
    schema: Schema,
    tuples: Vec<StoredTuple>,
    /// Exact-match lookup: (relation, values) -> id.
    dedup: HashMap<(RelId, Vec<Constant>), TupleId>,
    /// Per relation, the ids of its tuples in insertion order.
    by_relation: Vec<Vec<TupleId>>,
    /// Join index: (relation, position, constant) -> tuple ids.
    index: HashMap<(RelId, usize, Constant), Vec<TupleId>>,
}

impl Database {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        let by_relation = vec![Vec::new(); schema.len()];
        Database {
            schema,
            tuples: Vec::new(),
            dedup: HashMap::new(),
            by_relation,
            index: HashMap::new(),
        }
    }

    /// Creates an empty database using the schema of `q`.
    pub fn for_query(q: &Query) -> Self {
        Database::new(q.schema().clone())
    }

    /// The schema of the database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Inserts a tuple, returning its id. Inserting the same tuple twice
    /// returns the original id.
    ///
    /// # Panics
    /// Panics if the arity does not match the relation declaration.
    pub fn insert<C: Into<Constant> + Copy>(&mut self, rel: RelId, values: &[C]) -> TupleId {
        let values: Vec<Constant> = values.iter().map(|&c| c.into()).collect();
        assert_eq!(
            values.len(),
            self.schema.arity(rel),
            "arity mismatch inserting into {}",
            self.schema.name(rel)
        );
        if let Some(&id) = self.dedup.get(&(rel, values.clone())) {
            return id;
        }
        let id = TupleId(self.tuples.len() as u32);
        for (pos, &c) in values.iter().enumerate() {
            self.index.entry((rel, pos, c)).or_default().push(id);
        }
        self.by_relation[rel.index()].push(id);
        self.dedup.insert((rel, values.clone()), id);
        self.tuples.push(StoredTuple {
            relation: rel,
            values,
        });
        id
    }

    /// Convenience: inserts into the relation named `rel_name`.
    ///
    /// # Panics
    /// Panics if the relation does not exist in the schema.
    pub fn insert_named<C: Into<Constant> + Copy>(&mut self, rel_name: &str, values: &[C]) -> TupleId {
        let rel = self
            .schema
            .relation_id(rel_name)
            .unwrap_or_else(|| panic!("unknown relation {rel_name}"));
        self.insert(rel, values)
    }

    /// Total number of tuples (`n = |D|`).
    pub fn num_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the database holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The relation a tuple belongs to.
    pub fn relation_of(&self, id: TupleId) -> RelId {
        self.tuples[id.index()].relation
    }

    /// The values of a tuple.
    pub fn values_of(&self, id: TupleId) -> &[Constant] {
        &self.tuples[id.index()].values
    }

    /// Ids of all tuples of `rel`, in insertion order.
    pub fn tuples_of(&self, rel: RelId) -> &[TupleId] {
        &self.by_relation[rel.index()]
    }

    /// Ids of all tuples.
    pub fn all_tuples(&self) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.tuples.len() as u32).map(TupleId)
    }

    /// Looks up a specific tuple.
    pub fn lookup<C: Into<Constant> + Copy>(&self, rel: RelId, values: &[C]) -> Option<TupleId> {
        let values: Vec<Constant> = values.iter().map(|&c| c.into()).collect();
        self.dedup.get(&(rel, values)).copied()
    }

    /// Whether the database contains the given tuple.
    pub fn contains<C: Into<Constant> + Copy>(&self, rel: RelId, values: &[C]) -> bool {
        self.lookup(rel, values).is_some()
    }

    /// Tuples of `rel` whose attribute at `pos` equals `value`
    /// (index-accelerated).
    pub fn tuples_matching(&self, rel: RelId, pos: usize, value: Constant) -> &[TupleId] {
        self.index
            .get(&(rel, pos, value))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The active domain: every constant occurring in some tuple.
    pub fn active_domain(&self) -> BTreeSet<Constant> {
        self.tuples
            .iter()
            .flat_map(|t| t.values.iter().copied())
            .collect()
    }

    /// Removes the given tuples, returning a new database. Tuple ids are
    /// *not* preserved — use this for end-state checks, not for bookkeeping
    /// against the original ids.
    pub fn without(&self, deleted: &HashSet<TupleId>) -> Database {
        let mut out = Database::new(self.schema.clone());
        for id in self.all_tuples() {
            if !deleted.contains(&id) {
                let t = &self.tuples[id.index()];
                out.insert(t.relation, &t.values);
            }
        }
        out
    }

    /// Returns the ids of all tuples whose relation is *endogenous with
    /// respect to `q`*, i.e. the relation has at least one endogenous atom in
    /// `q`. These are the tuples a contingency set may delete.
    pub fn endogenous_tuples(&self, q: &Query) -> Vec<TupleId> {
        let endo_rels: HashSet<RelId> = q
            .endogenous_atoms()
            .into_iter()
            .map(|i| q.atom(i).relation)
            .collect();
        // Relations are matched by name because query and database may hold
        // structurally identical but separately-built schemas.
        let endo_names: HashSet<&str> = endo_rels.iter().map(|&r| q.schema().name(r)).collect();
        self.all_tuples()
            .filter(|&id| endo_names.contains(self.schema.name(self.relation_of(id))))
            .collect()
    }

    /// Pretty, deterministic rendering of the instance (sorted by relation
    /// then values); used by examples and debugging output.
    pub fn display_sorted(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for rel in self.schema.relation_ids() {
            let mut rows: Vec<&StoredTuple> = self
                .tuples_of(rel)
                .iter()
                .map(|&id| &self.tuples[id.index()])
                .collect();
            rows.sort_by(|a, b| a.values.cmp(&b.values));
            for row in rows {
                let vals: Vec<String> = row.values.iter().map(|c| c.to_string()).collect();
                lines.push(format!("{}({})", self.schema.name(rel), vals.join(",")));
            }
        }
        lines.join("\n")
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_sorted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    fn chain_db() -> (cq::Query, Database) {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        let r = db.schema().relation_id("R").unwrap();
        db.insert(r, &[1, 2]);
        db.insert(r, &[2, 3]);
        db.insert(r, &[3, 3]);
        (q, db)
    }

    #[test]
    fn insert_and_lookup() {
        let (_, db) = chain_db();
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.num_tuples(), 3);
        assert!(db.contains(r, &[1, 2]));
        assert!(!db.contains(r, &[2, 1]));
        assert_eq!(db.tuples_of(r).len(), 3);
        assert_eq!(db.values_of(TupleId(0)), &[Constant(1), Constant(2)]);
        assert_eq!(db.relation_of(TupleId(0)), r);
        assert!(!db.is_empty());
    }

    #[test]
    fn duplicate_insert_returns_same_id() {
        let q = parse_query("R(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        let r = db.schema().relation_id("R").unwrap();
        let a = db.insert(r, &[1, 2]);
        let b = db.insert(r, &[1, 2]);
        assert_eq!(a, b);
        assert_eq!(db.num_tuples(), 1);
    }

    #[test]
    fn index_lookup_by_position() {
        let (_, db) = chain_db();
        let r = db.schema().relation_id("R").unwrap();
        let hits = db.tuples_matching(r, 1, Constant(3));
        assert_eq!(hits.len(), 2); // R(2,3) and R(3,3)
        let none = db.tuples_matching(r, 0, Constant(9));
        assert!(none.is_empty());
    }

    #[test]
    fn active_domain_collects_all_constants() {
        let (_, db) = chain_db();
        let dom = db.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Constant(1)));
        assert!(dom.contains(&Constant(3)));
    }

    #[test]
    fn without_removes_tuples() {
        let (_, db) = chain_db();
        let deleted: HashSet<TupleId> = [TupleId(1)].into_iter().collect();
        let smaller = db.without(&deleted);
        assert_eq!(smaller.num_tuples(), 2);
        let r = smaller.schema().relation_id("R").unwrap();
        assert!(!smaller.contains(r, &[2, 3]));
        assert!(smaller.contains(r, &[1, 2]));
    }

    #[test]
    fn endogenous_tuples_respect_exogenous_relations() {
        let q = parse_query("A(x), R^x(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("A", &[1]);
        db.insert_named("R", &[1, 2]);
        let endo = db.endogenous_tuples(&q);
        assert_eq!(endo.len(), 1);
        let a = db.schema().relation_id("A").unwrap();
        assert_eq!(db.relation_of(endo[0]), a);
    }

    #[test]
    fn insert_named_panics_on_unknown_relation() {
        let q = parse_query("A(x)").unwrap();
        let mut db = Database::for_query(&q);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            db.insert_named("Z", &[1]);
        }));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let q = parse_query("R(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        let r = db.schema().relation_id("R").unwrap();
        db.insert(r, &[1]);
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let (_, db) = chain_db();
        let s = db.to_string();
        assert_eq!(s, "R(1,2)\nR(2,3)\nR(3,3)");
    }
}
