//! Database-instance substrate for the resilience library.
//!
//! The paper studies Boolean conjunctive queries over finite database
//! instances `D = (R_1^D, ..., R_l^D)` and defines resilience in terms of the
//! *witnesses* of `D |= q`: valuations of the existential variables that make
//! the query true, each of which pins down a set of at most `m` tuples
//! (Section 2.1). This crate provides:
//!
//! * [`Constant`] values and an optional string interner ([`ConstPool`]) for
//!   readable gadget constructions;
//! * [`Database`] instances keyed by the owning query's [`cq::Schema`], with
//!   per-position hash indexes for join evaluation, and their immutable
//!   CSR-compacted counterpart [`FrozenDb`] ([`Database::freeze`]) used by
//!   the engine's solve path;
//! * the [`TupleStore`] trait, the shared read surface both instance types
//!   expose to the solvers;
//! * Boolean evaluation and full witness enumeration ([`eval`]), driven by
//!   reusable compiled [`QueryPlan`]s;
//! * the *witness hypergraph* ([`witness::WitnessSet`]) — every witness
//!   reduced to its set of deletable (endogenous) tuples, stored as flat CSR
//!   incidence in both directions ([`witness::WitnessIndex`]) — which is the
//!   common input of the exact solver, the flow algorithms, the IJP
//!   machinery and the engine's deletion-aware solve sessions.

pub mod arena;
pub mod eval;
pub mod frozen;
pub mod fx;
pub mod instance;
pub mod interner;
pub mod shard;
pub mod snapshot;
pub mod store;
pub mod tuple;
pub mod witness;

pub use eval::{
    canonical_witnesses, evaluate, reference_witnesses, try_relation_translation, witnesses,
    witnesses_with_plan_into, witnesses_with_plan_into_cancellable,
    witnesses_with_plan_parallel_into, witnesses_with_plan_parallel_into_cancellable, QueryPlan,
    Valuation, Witness,
};
pub use frozen::FrozenDb;
pub use fx::{FxHashMap, FxHashSet};
pub use instance::Database;
pub use interner::ConstPool;
pub use shard::{Shard, ShardPlan, StreamTuple};
pub use snapshot::{SnapshotError, SnapshotInfo};
pub use store::{copy_without, copy_without_mask, TupleStore};
pub use tuple::{Constant, TupleId};
pub use witness::{
    ReducedScratch, ReducedSets, ReducedSetsLive, WitnessIndex, WitnessSet, WitnessView,
};
