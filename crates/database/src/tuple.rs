//! Constants and tuple identifiers.

use std::fmt;

/// A constant of the active domain.
///
/// Constants are opaque 64-bit values. Gadget constructions that want
/// readable constants (`⟨ab⟩_v`-style values from the paper's reductions) can
/// intern strings through [`crate::ConstPool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Constant(pub u64);

impl Constant {
    /// Returns the raw value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl From<u64> for Constant {
    fn from(v: u64) -> Self {
        Constant(v)
    }
}

impl From<u32> for Constant {
    fn from(v: u32) -> Self {
        Constant(v as u64)
    }
}

impl From<usize> for Constant {
    fn from(v: usize) -> Self {
        Constant(v as u64)
    }
}

impl From<i32> for Constant {
    fn from(v: i32) -> Self {
        debug_assert!(v >= 0, "constants must be non-negative");
        Constant(v as u64)
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a tuple within a [`crate::Database`].
///
/// Tuple ids are dense indices assigned in insertion order; they index the
/// database's tuple arena and are the currency of witness sets, contingency
/// sets and flow networks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct TupleId(pub u32);

impl TupleId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn conversions() {
        assert_eq!(Constant::from(5u64), Constant(5));
        assert_eq!(Constant::from(5u32), Constant(5));
        assert_eq!(Constant::from(5usize), Constant(5));
        assert_eq!(Constant::from(5i32), Constant(5));
        assert_eq!(Constant(7).value(), 7);
    }

    #[test]
    fn ordering_and_hashing() {
        assert!(Constant(1) < Constant(2));
        assert!(TupleId(0) < TupleId(1));
        let set: HashSet<_> = [TupleId(1), TupleId(1), TupleId(2)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Constant(3)), "3");
        assert_eq!(format!("{:?}", Constant(3)), "c3");
        assert_eq!(format!("{:?}", TupleId(4)), "t4");
        assert_eq!(TupleId(4).index(), 4);
    }
}
