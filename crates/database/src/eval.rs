//! Boolean evaluation and witness enumeration for conjunctive queries.
//!
//! A *witness* (Section 2.1) is a valuation of all existential variables that
//! makes the query true; it determines one tuple per atom (tuples may repeat
//! across atoms when the query has self-joins — that sharing is exactly what
//! makes resilience with self-joins subtle).
//!
//! The enumerator runs a compiled [`QueryPlan`]: a join order plus, per atom,
//! the statically-resolved list of positions that *check* an already-bound
//! variable and positions that *bind* a fresh one, and the index probe to use
//! for candidate selection. The inner loop then touches only flat arrays — a
//! `Vec<Option<Constant>>` valuation indexed by `Var` and borrowed candidate
//! slices from the store's per-position bucket index — and performs no
//! per-tuple allocation or hashing.
//!
//! Plans come in two flavours. [`QueryPlan::compile`] is *instance-free*: the
//! join order is chosen from the query structure alone, so one plan can be
//! compiled per query and shared across many instances (this is what the
//! engine's batch API does). The per-call convenience entry points
//! ([`witnesses`], [`evaluate`]) instead use [`QueryPlan::compile_scaled`],
//! which additionally orders atoms by relation cardinality in the concrete
//! instance. All enumeration is generic over [`TupleStore`], so it runs
//! unchanged on a mutable [`Database`](crate::Database) or a compacted
//! [`FrozenDb`](crate::FrozenDb).
//!
//! Large instances can enumerate in parallel:
//! [`witnesses_with_plan_parallel_into`] partitions the first join step's
//! candidate scan across scoped threads and merges the per-thread results in
//! deterministic (chunk) order, producing output bit-identical to the
//! sequential enumerator.

use crate::store::TupleStore;
use crate::tuple::{Constant, TupleId};
use cq::{Query, RelId};

/// A valuation of the query's variables (indexed by `Var`).
pub type Valuation = Vec<Constant>;

/// One witness of `D |= q`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// The value assigned to each variable of the query.
    pub valuation: Valuation,
    /// For each atom of the query (in atom order), the tuple it matched.
    pub atom_tuples: Vec<TupleId>,
}

impl Witness {
    /// The distinct tuples used by this witness, sorted.
    pub fn tuple_set(&self) -> Vec<TupleId> {
        let mut ts = self.atom_tuples.clone();
        ts.sort_unstable();
        ts.dedup();
        ts
    }
}

/// Maps the relation ids of `q`'s schema onto the relation ids of `db`'s
/// schema by name, or reports the first missing relation name.
pub fn try_relation_translation<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
) -> Result<Vec<RelId>, String> {
    q.schema()
        .relation_ids()
        .map(|r| {
            let name = q.schema().name(r);
            db.schema()
                .relation_id(name)
                .ok_or_else(|| name.to_string())
        })
        .collect()
}

/// Infallible [`try_relation_translation`]: panics if a relation of the
/// query is missing from the store schema.
fn relation_translation<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Vec<RelId> {
    try_relation_translation(q, db)
        .unwrap_or_else(|name| panic!("database schema is missing relation {name}"))
}

/// What to do with one argument position of an atom when matching a
/// candidate tuple, resolved at plan-compile time.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// The variable is already bound (by an earlier atom, or by an earlier
    /// position of this atom): the tuple value must equal it.
    Check { pos: u32, var: u32 },
    /// First occurrence of the variable along the join order: bind it.
    Bind { pos: u32, var: u32 },
}

/// The compiled matching procedure for one atom at its place in the join
/// order.
#[derive(Clone, Debug)]
struct AtomPlan {
    /// Index of the atom in the query (for `Witness::atom_tuples`).
    atom_idx: u32,
    /// The *query-side* relation of the atom; resolved against the concrete
    /// store through the translation table at enumeration time.
    rel: RelId,
    /// `(pos, var)` of the first argument whose variable is bound by earlier
    /// atoms — candidates come from the position index; `None` means no
    /// argument is pre-bound and the whole relation is scanned.
    probe: Option<(u32, u32)>,
    /// Check/bind steps in argument order (the probe position is skipped:
    /// index candidates match it by construction).
    steps: Vec<Step>,
    /// Variables newly bound by this atom; reset on backtrack.
    binds: Vec<u32>,
}

/// A compiled join: atom order plus per-atom matching steps.
///
/// Compile once with [`QueryPlan::compile`] and reuse across every instance
/// of the query; the plan holds no reference to any store.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    order: Vec<AtomPlan>,
    num_vars: usize,
    num_atoms: usize,
}

impl QueryPlan {
    /// Compiles an instance-free plan for `q`: greedy join order preferring
    /// atoms with an already-bound variable (they can use the position
    /// index), breaking ties towards lower arity (unary anchors first) and
    /// then query order.
    pub fn compile(q: &Query) -> QueryPlan {
        Self::compile_with(q, |_| 0)
    }

    /// Compiles a plan ordered by the relation cardinalities of a concrete
    /// store: among remaining atoms, prefer one with an already-bound
    /// variable, then the smallest relation. This is the per-call heuristic
    /// used by [`witnesses`] and [`evaluate`].
    pub fn compile_scaled<S: TupleStore + ?Sized>(q: &Query, db: &S) -> QueryPlan {
        let translation = relation_translation(q, db);
        Self::compile_with(q, |atom_idx| {
            db.tuples_of(translation[q.atom(atom_idx).relation.index()])
                .len()
        })
    }

    fn compile_with(q: &Query, size_of_atom: impl Fn(usize) -> usize) -> QueryPlan {
        let num_atoms = q.num_atoms();
        let mut bound = vec![false; q.num_vars()];
        let mut remaining: Vec<usize> = (0..num_atoms).collect();
        let mut order: Vec<AtomPlan> = Vec::with_capacity(num_atoms);
        while !remaining.is_empty() {
            let (choice, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|&(_, &i)| {
                    let atom = q.atom(i);
                    let has_bound = atom.args.iter().any(|v| bound[v.index()]);
                    (!has_bound, size_of_atom(i), atom.args.len(), i)
                })
                .expect("remaining is non-empty");
            let atom_idx = remaining.swap_remove(choice);
            let atom = q.atom(atom_idx);

            let probe = atom
                .args
                .iter()
                .enumerate()
                .find(|(_, v)| bound[v.index()])
                .map(|(pos, v)| (pos as u32, v.0));
            let mut steps = Vec::with_capacity(atom.args.len());
            let mut binds = Vec::new();
            for (pos, &var) in atom.args.iter().enumerate() {
                if probe == Some((pos as u32, var.0)) {
                    continue; // index candidates already match this position
                }
                if bound[var.index()] {
                    steps.push(Step::Check {
                        pos: pos as u32,
                        var: var.0,
                    });
                } else {
                    bound[var.index()] = true;
                    binds.push(var.0);
                    steps.push(Step::Bind {
                        pos: pos as u32,
                        var: var.0,
                    });
                }
            }
            order.push(AtomPlan {
                atom_idx: atom_idx as u32,
                rel: atom.relation,
                probe,
                steps,
                binds,
            });
        }
        QueryPlan {
            order,
            num_vars: q.num_vars(),
            num_atoms,
        }
    }

    /// Number of atoms covered by the plan.
    pub fn num_atoms(&self) -> usize {
        self.num_atoms
    }
}

/// Does `db |= q`? Short-circuits on the first witness.
pub fn evaluate<S: TupleStore + ?Sized>(q: &Query, db: &S) -> bool {
    let mut found = false;
    enumerate(q, db, &mut |_| {
        found = true;
        false // stop
    });
    found
}

/// Enumerates all witnesses of `db |= q`.
pub fn witnesses<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Vec<Witness> {
    let mut out = Vec::new();
    enumerate(q, db, &mut |w| {
        out.push(w);
        true // keep going
    });
    out
}

/// Enumerates all witnesses through a precompiled plan into `out` (which is
/// cleared first, so its allocation can be reused across instances).
pub fn witnesses_with_plan_into<S: TupleStore + ?Sized>(
    plan: &QueryPlan,
    translation: &[RelId],
    db: &S,
    out: &mut Vec<Witness>,
) {
    out.clear();
    enumerate_with_plan(plan, translation, db, &mut |w| {
        out.push(w);
        true
    });
}

/// How often the cancellable enumerators consult their callback: every
/// 1024 witnesses, so the check is amortized to nothing on the happy path
/// while cancellation latency stays bounded (a witness is produced in
/// microseconds).
const CANCEL_CHECK_MASK: usize = 1023;

/// [`witnesses_with_plan_into`] with a cooperative cancellation callback,
/// consulted every 1024 witnesses. Returns `true` when the enumeration ran
/// to completion; `false` when the callback stopped it early (the contents
/// of `out` are then partial and must not be used as a witness set).
pub fn witnesses_with_plan_into_cancellable<S: TupleStore + ?Sized>(
    plan: &QueryPlan,
    translation: &[RelId],
    db: &S,
    out: &mut Vec<Witness>,
    is_cancelled: &(dyn Fn() -> bool + Sync),
) -> bool {
    out.clear();
    let mut stopped = false;
    let mut count = 0usize;
    enumerate_with_plan(plan, translation, db, &mut |w| {
        out.push(w);
        count += 1;
        if count & CANCEL_CHECK_MASK == 0 && is_cancelled() {
            stopped = true;
            return false;
        }
        true
    });
    !stopped
}

/// Parallel [`witnesses_with_plan_into`]: the candidate list of the *first*
/// join step (a whole-relation scan — the first atom of a plan never has a
/// bound variable to probe) is partitioned into contiguous chunks, one
/// scoped thread enumerates each chunk into its own `Vec<Witness>`, and the
/// per-thread vectors are concatenated in chunk order.
///
/// Because the sequential enumerator visits the first atom's candidates in
/// exactly that slice order and the deeper levels are unaffected by the
/// split, the merged output is **bit-identical** to the sequential one — the
/// engine, the deletion sessions and the differential tests all rely on this
/// determinism.
///
/// `threads` is an upper bound; it is clamped to the candidate count and a
/// value of 0 or 1 (or a plan whose first atom probes, which only a
/// hand-built plan could produce) falls back to the sequential path.
pub fn witnesses_with_plan_parallel_into<S: TupleStore + Sync + ?Sized>(
    plan: &QueryPlan,
    translation: &[RelId],
    db: &S,
    threads: usize,
    out: &mut Vec<Witness>,
) {
    out.clear();
    if plan.num_atoms == 0 {
        return;
    }
    let first = &plan.order[0];
    let candidates: &[TupleId] = match first.probe {
        None => db.tuples_of(translation[first.rel.index()]),
        Some(_) => {
            witnesses_with_plan_into(plan, translation, db, out);
            return;
        }
    };
    let threads = threads.min(candidates.len()).max(1);
    if threads <= 1 {
        witnesses_with_plan_into(plan, translation, db, out);
        return;
    }
    let chunk = candidates.len().div_ceil(threads);
    let parts: Vec<Vec<Witness>> = std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|chunk_candidates| {
                scope.spawn(move || {
                    let mut local: Vec<Witness> = Vec::new();
                    let mut valuation: Vec<Option<Constant>> = vec![None; plan.num_vars];
                    let mut chosen: Vec<TupleId> = vec![TupleId(0); plan.num_atoms];
                    let mut running = true;
                    search_candidates(
                        plan,
                        translation,
                        db,
                        0,
                        chunk_candidates,
                        &mut valuation,
                        &mut chosen,
                        &mut |w| {
                            local.push(w);
                            true
                        },
                        &mut running,
                    );
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("witness enumeration thread panicked"))
            .collect()
    });
    for mut part in parts {
        out.append(&mut part);
    }
}

/// [`witnesses_with_plan_parallel_into`] with a cooperative cancellation
/// callback (shared across the enumeration threads), consulted every 1024
/// witnesses per thread. Returns `true` when the enumeration ran to
/// completion on every thread; `false` when any thread was stopped early
/// (the contents of `out` are then partial and must not be used).
pub fn witnesses_with_plan_parallel_into_cancellable<S: TupleStore + Sync + ?Sized>(
    plan: &QueryPlan,
    translation: &[RelId],
    db: &S,
    threads: usize,
    out: &mut Vec<Witness>,
    is_cancelled: &(dyn Fn() -> bool + Sync),
) -> bool {
    out.clear();
    if plan.num_atoms == 0 {
        return true;
    }
    let first = &plan.order[0];
    let candidates: &[TupleId] = match first.probe {
        None => db.tuples_of(translation[first.rel.index()]),
        Some(_) => {
            return witnesses_with_plan_into_cancellable(plan, translation, db, out, is_cancelled);
        }
    };
    let threads = threads.min(candidates.len()).max(1);
    if threads <= 1 {
        return witnesses_with_plan_into_cancellable(plan, translation, db, out, is_cancelled);
    }
    let chunk = candidates.len().div_ceil(threads);
    let parts: Vec<(Vec<Witness>, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|chunk_candidates| {
                scope.spawn(move || {
                    let mut local: Vec<Witness> = Vec::new();
                    let mut valuation: Vec<Option<Constant>> = vec![None; plan.num_vars];
                    let mut chosen: Vec<TupleId> = vec![TupleId(0); plan.num_atoms];
                    let mut running = true;
                    let mut stopped = false;
                    let mut count = 0usize;
                    search_candidates(
                        plan,
                        translation,
                        db,
                        0,
                        chunk_candidates,
                        &mut valuation,
                        &mut chosen,
                        &mut |w| {
                            local.push(w);
                            count += 1;
                            if count & CANCEL_CHECK_MASK == 0 && is_cancelled() {
                                stopped = true;
                                return false;
                            }
                            true
                        },
                        &mut running,
                    );
                    (local, !stopped)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("witness enumeration thread panicked"))
            .collect()
    });
    let mut completed = true;
    for (mut part, part_completed) in parts {
        out.append(&mut part);
        completed &= part_completed;
    }
    completed
}

/// Core backtracking join with a per-call plan. Calls `sink` for each
/// witness; `sink` returns `false` to stop the enumeration early.
fn enumerate<S: TupleStore + ?Sized>(q: &Query, db: &S, sink: &mut dyn FnMut(Witness) -> bool) {
    if q.num_atoms() == 0 {
        return;
    }
    let plan = QueryPlan::compile_scaled(q, db);
    let translation = relation_translation(q, db);
    enumerate_with_plan(&plan, &translation, db, sink);
}

/// Core backtracking join over a precompiled plan. `translation` maps the
/// query-side relation ids to the store's (see [`try_relation_translation`]).
pub fn enumerate_with_plan<S: TupleStore + ?Sized>(
    plan: &QueryPlan,
    translation: &[RelId],
    db: &S,
    sink: &mut dyn FnMut(Witness) -> bool,
) {
    if plan.num_atoms == 0 {
        return;
    }
    let mut valuation: Vec<Option<Constant>> = vec![None; plan.num_vars];
    let mut chosen: Vec<TupleId> = vec![TupleId(0); plan.num_atoms];
    let mut running = true;
    search(
        plan,
        translation,
        db,
        0,
        &mut valuation,
        &mut chosen,
        sink,
        &mut running,
    );
}

#[allow(clippy::too_many_arguments)]
fn search<S: TupleStore + ?Sized>(
    plan: &QueryPlan,
    translation: &[RelId],
    db: &S,
    depth: usize,
    valuation: &mut [Option<Constant>],
    chosen: &mut [TupleId],
    sink: &mut dyn FnMut(Witness) -> bool,
    running: &mut bool,
) {
    if depth == plan.order.len() {
        let full: Valuation = valuation
            .iter()
            .map(|v| v.expect("all variables bound at a leaf"))
            .collect();
        let witness = Witness {
            valuation: full,
            atom_tuples: chosen.to_vec(),
        };
        if !sink(witness) {
            *running = false;
        }
        return;
    }
    let ap = &plan.order[depth];
    let rel = translation[ap.rel.index()];
    let candidates: &[TupleId] = match ap.probe {
        Some((pos, var)) => {
            let value = valuation[var as usize].expect("probe variable is bound");
            db.tuples_matching(rel, pos as usize, value)
        }
        None => db.tuples_of(rel),
    };
    search_candidates(
        plan,
        translation,
        db,
        depth,
        candidates,
        valuation,
        chosen,
        sink,
        running,
    );
}

/// The candidate loop of [`search`] at one depth, with an explicit candidate
/// slice. The parallel enumerator calls this directly at depth 0 with one
/// chunk of the first atom's scan per thread.
#[allow(clippy::too_many_arguments)]
fn search_candidates<S: TupleStore + ?Sized>(
    plan: &QueryPlan,
    translation: &[RelId],
    db: &S,
    depth: usize,
    candidates: &[TupleId],
    valuation: &mut [Option<Constant>],
    chosen: &mut [TupleId],
    sink: &mut dyn FnMut(Witness) -> bool,
    running: &mut bool,
) {
    let ap = &plan.order[depth];
    for &id in candidates {
        let values = db.values_of(id);
        let mut ok = true;
        for step in &ap.steps {
            match *step {
                Step::Check { pos, var } => {
                    if valuation[var as usize] != Some(values[pos as usize]) {
                        ok = false;
                        break;
                    }
                }
                Step::Bind { pos, var } => {
                    valuation[var as usize] = Some(values[pos as usize]);
                }
            }
        }
        if ok {
            chosen[ap.atom_idx as usize] = id;
            search(
                plan,
                translation,
                db,
                depth + 1,
                valuation,
                chosen,
                sink,
                running,
            );
        }
        for &var in &ap.binds {
            valuation[var as usize] = None;
        }
        if !*running {
            return;
        }
    }
}

/// Reference witness enumerator: plain nested loops over every atom's
/// relation with a straightforward consistency check, no join ordering, no
/// indexes. Exponentially slower than [`witnesses`] but obviously correct —
/// the differential tests assert the two agree on random inputs.
pub fn reference_witnesses<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Vec<Witness> {
    let mut out = Vec::new();
    if q.num_atoms() == 0 {
        return out;
    }
    let translation = relation_translation(q, db);
    let mut chosen: Vec<TupleId> = vec![TupleId(0); q.num_atoms()];
    reference_search(q, db, &translation, 0, &mut chosen, &mut out);
    out
}

fn reference_search<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    translation: &[RelId],
    depth: usize,
    chosen: &mut Vec<TupleId>,
    out: &mut Vec<Witness>,
) {
    if depth == q.num_atoms() {
        // Recompute the valuation from scratch; inconsistent combinations
        // were already rejected below.
        let mut assignment: Vec<Option<Constant>> = vec![None; q.num_vars()];
        for (i, &id) in chosen.iter().enumerate() {
            let values = db.values_of(id);
            for (pos, &var) in q.atom(i).args.iter().enumerate() {
                assignment[var.index()] = Some(values[pos]);
            }
        }
        out.push(Witness {
            valuation: assignment.into_iter().map(|v| v.unwrap()).collect(),
            atom_tuples: chosen.clone(),
        });
        return;
    }
    let rel = translation[q.atom(depth).relation.index()];
    for &id in db.tuples_of(rel) {
        chosen[depth] = id;
        if reference_consistent(q, db, &chosen[..depth + 1]) {
            reference_search(q, db, translation, depth + 1, chosen, out);
        }
    }
}

/// Is the partial tuple choice consistent (every variable maps to a single
/// constant across all chosen atoms)?
fn reference_consistent<S: TupleStore + ?Sized>(q: &Query, db: &S, chosen: &[TupleId]) -> bool {
    let mut assignment: Vec<Option<Constant>> = vec![None; q.num_vars()];
    for (i, &id) in chosen.iter().enumerate() {
        let values = db.values_of(id);
        for (pos, &var) in q.atom(i).args.iter().enumerate() {
            match assignment[var.index()] {
                Some(c) if c != values[pos] => return false,
                Some(_) => {}
                None => assignment[var.index()] = Some(values[pos]),
            }
        }
    }
    true
}

/// Convenience for tests: the sorted multiset of `(valuation, atom_tuples)`
/// pairs, a canonical form for comparing two enumerators.
pub fn canonical_witnesses(ws: &[Witness]) -> Vec<(Vec<Constant>, Vec<TupleId>)> {
    let mut canon: Vec<(Vec<Constant>, Vec<TupleId>)> = ws
        .iter()
        .map(|w| (w.valuation.clone(), w.atom_tuples.clone()))
        .collect();
    canon.sort();
    canon
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Database;
    use cq::parse_query;

    #[test]
    fn paper_chain_example_has_three_witnesses() {
        // Section 2.1: q_chain over D = {R(1,2), R(2,3), R(3,3)} has witnesses
        // (1,2,3), (2,3,3), (3,3,3).
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        db.insert_named("R", &[3, 3]);
        assert!(evaluate(&q, &db));
        let ws = witnesses(&q, &db);
        assert_eq!(ws.len(), 3);
        let mut vals: Vec<Vec<u64>> = ws
            .iter()
            .map(|w| w.valuation.iter().map(|c| c.value()).collect())
            .collect();
        vals.sort();
        // Variable order is x, y, z as they appear in the query.
        assert_eq!(vals, vec![vec![1, 2, 3], vec![2, 3, 3], vec![3, 3, 3]]);
    }

    #[test]
    fn witness_tuple_sets_match_the_paper() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        let t1 = db.insert_named("R", &[1, 2]);
        let t2 = db.insert_named("R", &[2, 3]);
        let t3 = db.insert_named("R", &[3, 3]);
        let ws = witnesses(&q, &db);
        let mut sets: Vec<Vec<TupleId>> = ws.iter().map(|w| w.tuple_set()).collect();
        sets.sort();
        let mut expected = vec![vec![t1, t2], vec![t2, t3], vec![t3]];
        expected.sort();
        assert_eq!(sets, expected);
    }

    #[test]
    fn unsatisfied_query_has_no_witnesses() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        assert!(!evaluate(&q, &db));
        assert!(witnesses(&q, &db).is_empty());
    }

    #[test]
    fn triangle_witnesses() {
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("S", &[2, 3]);
        db.insert_named("T", &[3, 1]);
        db.insert_named("T", &[3, 9]); // does not close the triangle
        let ws = witnesses(&q, &db);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].valuation, vec![Constant(1), Constant(2), Constant(3)]);
    }

    #[test]
    fn repeated_variable_atoms_bind_correctly() {
        let q = parse_query("R(x,x), R(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 1]);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        let ws = witnesses(&q, &db);
        // x must be 1 (the only loop); y can be 1 or 2.
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert_eq!(w.valuation[0], Constant(1));
        }
    }

    #[test]
    fn unary_relations_evaluate() {
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1]);
        db.insert_named("R", &[2]);
        db.insert_named("S", &[1, 2]);
        db.insert_named("S", &[1, 3]);
        let ws = witnesses(&q, &db);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].valuation, vec![Constant(1), Constant(2)]);
    }

    #[test]
    fn self_join_witness_can_reuse_one_tuple() {
        // The witness (3,3,3) uses R(3,3) for both atoms: its tuple set has
        // size 1, which is the crux of Example in Section 2.1.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        let t = db.insert_named("R", &[3, 3]);
        let ws = witnesses(&q, &db);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].atom_tuples, vec![t, t]);
        assert_eq!(ws[0].tuple_set(), vec![t]);
    }

    #[test]
    fn exogenous_atoms_still_join() {
        let q = parse_query("A(x), R^x(x,y), B(y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("A", &[1]);
        db.insert_named("R", &[1, 2]);
        db.insert_named("B", &[2]);
        assert!(evaluate(&q, &db));
        assert_eq!(witnesses(&q, &db).len(), 1);
    }

    #[test]
    fn evaluation_scales_to_moderate_cross_products() {
        // 30x30 joins through a shared middle value; ensure enumeration
        // produces the full cross product without issue.
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for i in 0..30u64 {
            db.insert_named("R", &[i, 1000]);
            db.insert_named("S", &[1000, 2000 + i]);
        }
        let ws = witnesses(&q, &db);
        assert_eq!(ws.len(), 900);
    }

    #[test]
    fn empty_query_is_never_satisfied() {
        // A query with no atoms is outside the paper's scope; we treat it as
        // unsatisfiable rather than vacuously true.
        let q = cq::Query::builder().build();
        let db = Database::new(q.schema().clone());
        assert!(!evaluate(&q, &db));
        assert!(reference_witnesses(&q, &db).is_empty());
    }

    #[test]
    fn reference_enumerator_agrees_on_the_paper_examples() {
        for (query, rows) in [
            (
                "R(x,y), R(y,z)",
                vec![("R", vec![1u64, 2]), ("R", vec![2, 3]), ("R", vec![3, 3])],
            ),
            (
                "R(x,x), R(x,y)",
                vec![("R", vec![1, 1]), ("R", vec![1, 2]), ("R", vec![2, 3])],
            ),
            (
                "R(x), S(x,y), R(y)",
                vec![("R", vec![1]), ("R", vec![2]), ("S", vec![1, 2])],
            ),
        ] {
            let q = parse_query(query).unwrap();
            let mut db = Database::for_query(&q);
            for (rel, vals) in rows {
                db.insert_named(rel, &vals);
            }
            assert_eq!(
                canonical_witnesses(&witnesses(&q, &db)),
                canonical_witnesses(&reference_witnesses(&q, &db)),
                "{query}"
            );
        }
    }

    #[test]
    fn plan_uses_index_probe_for_joined_atoms() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        for plan in [QueryPlan::compile(&q), QueryPlan::compile_scaled(&q, &db)] {
            // The first atom scans; the second must probe on its bound
            // variable.
            assert!(plan.order[0].probe.is_none());
            assert!(plan.order[1].probe.is_some());
            assert_eq!(plan.num_atoms(), 2);
        }
    }

    #[test]
    fn static_plan_enumerates_the_same_witnesses() {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let mut db = Database::for_query(&q);
        for (a, b) in [(1u64, 2u64), (4, 2), (5, 2), (1, 3), (5, 3)] {
            db.insert_named("R", &[a, b]);
        }
        for a in [1u64, 4] {
            db.insert_named("A", &[a]);
        }
        for c in [1u64, 5] {
            db.insert_named("C", &[c]);
        }
        let plan = QueryPlan::compile(&q);
        let translation = try_relation_translation(&q, &db).unwrap();
        let mut via_plan = Vec::new();
        witnesses_with_plan_into(&plan, &translation, &db, &mut via_plan);
        assert_eq!(
            canonical_witnesses(&via_plan),
            canonical_witnesses(&witnesses(&q, &db))
        );
        // The same plan works against the frozen copy and yields identical
        // witnesses in identical order.
        let frozen = db.freeze();
        let mut via_frozen = Vec::new();
        witnesses_with_plan_into(&plan, &translation, &frozen, &mut via_frozen);
        assert_eq!(via_plan, via_frozen);
    }

    #[test]
    fn parallel_enumeration_is_bit_identical_to_sequential() {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let mut db = Database::for_query(&q);
        for a in 0..12u64 {
            for b in 0..12u64 {
                if (a * 7 + b * 3) % 4 == 0 {
                    db.insert_named("R", &[a, b]);
                }
            }
            db.insert_named("A", &[a]);
            db.insert_named("C", &[a]);
        }
        let plan = QueryPlan::compile(&q);
        let translation = try_relation_translation(&q, &db).unwrap();
        let mut sequential = Vec::new();
        witnesses_with_plan_into(&plan, &translation, &db, &mut sequential);
        assert!(!sequential.is_empty());
        let frozen = db.freeze();
        for threads in [1usize, 2, 3, 8, 1000] {
            let mut parallel = Vec::new();
            witnesses_with_plan_parallel_into(&plan, &translation, &db, threads, &mut parallel);
            assert_eq!(sequential, parallel, "threads={threads}");
            // Same guarantee over the frozen store.
            witnesses_with_plan_parallel_into(&plan, &translation, &frozen, threads, &mut parallel);
            assert_eq!(sequential, parallel, "frozen, threads={threads}");
        }
    }

    #[test]
    fn parallel_enumeration_handles_empty_and_tiny_inputs() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = Database::for_query(&q);
        let plan = QueryPlan::compile(&q);
        let translation = try_relation_translation(&q, &db).unwrap();
        let mut out = vec![Witness {
            valuation: Vec::new(),
            atom_tuples: Vec::new(),
        }];
        witnesses_with_plan_parallel_into(&plan, &translation, &db, 4, &mut out);
        assert!(out.is_empty());
        // One candidate: clamps to a single thread.
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 1]);
        witnesses_with_plan_parallel_into(&plan, &translation, &db, 4, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn translation_reports_missing_relations() {
        let q = parse_query("R(x,y), Z(y)").unwrap();
        let q_r_only = parse_query("R(x,y)").unwrap();
        let db = Database::for_query(&q_r_only);
        assert_eq!(try_relation_translation(&q, &db), Err("Z".to_string()));
    }
}
