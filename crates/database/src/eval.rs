//! Boolean evaluation and witness enumeration for conjunctive queries.
//!
//! A *witness* (Section 2.1) is a valuation of all existential variables that
//! makes the query true; it determines one tuple per atom (tuples may repeat
//! across atoms when the query has self-joins — that sharing is exactly what
//! makes resilience with self-joins subtle).

use crate::instance::Database;
use crate::tuple::{Constant, TupleId};
use cq::{Query, RelId, Var};
use std::collections::HashMap;

/// A valuation of the query's variables (indexed by `Var`).
pub type Valuation = Vec<Constant>;

/// One witness of `D |= q`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// The value assigned to each variable of the query.
    pub valuation: Valuation,
    /// For each atom of the query (in atom order), the tuple it matched.
    pub atom_tuples: Vec<TupleId>,
}

impl Witness {
    /// The distinct tuples used by this witness, sorted.
    pub fn tuple_set(&self) -> Vec<TupleId> {
        let mut ts = self.atom_tuples.clone();
        ts.sort_unstable();
        ts.dedup();
        ts
    }
}

/// Maps the relation ids of `q`'s schema onto the relation ids of `db`'s
/// schema by name. Panics if a relation of the query is missing from the
/// database schema.
fn relation_translation(q: &Query, db: &Database) -> Vec<RelId> {
    q.schema()
        .relation_ids()
        .map(|r| {
            let name = q.schema().name(r);
            db.schema()
                .relation_id(name)
                .unwrap_or_else(|| panic!("database schema is missing relation {name}"))
        })
        .collect()
}

/// Does `db |= q`? Short-circuits on the first witness.
pub fn evaluate(q: &Query, db: &Database) -> bool {
    let mut found = false;
    enumerate(q, db, &mut |_| {
        found = true;
        false // stop
    });
    found
}

/// Enumerates all witnesses of `db |= q`.
pub fn witnesses(q: &Query, db: &Database) -> Vec<Witness> {
    let mut out = Vec::new();
    enumerate(q, db, &mut |w| {
        out.push(w);
        true // keep going
    });
    out
}

/// Core backtracking join. Calls `sink` for each witness; `sink` returns
/// `false` to stop the enumeration early.
fn enumerate(q: &Query, db: &Database, sink: &mut dyn FnMut(Witness) -> bool) {
    if q.num_atoms() == 0 {
        return;
    }
    let translation = relation_translation(q, db);
    // Order atoms by number of tuples in their relation (smallest first) for
    // a cheap join-order heuristic; selection-by-bound-variable still uses
    // the per-position index at each step.
    let mut order: Vec<usize> = (0..q.num_atoms()).collect();
    order.sort_by_key(|&i| db.tuples_of(translation[q.atom(i).relation.index()]).len());

    let mut assignment: HashMap<Var, Constant> = HashMap::new();
    let mut chosen: Vec<TupleId> = vec![TupleId(0); q.num_atoms()];
    let mut running = true;
    search(
        q,
        db,
        &translation,
        &order,
        0,
        &mut assignment,
        &mut chosen,
        sink,
        &mut running,
    );
}

#[allow(clippy::too_many_arguments)]
fn search(
    q: &Query,
    db: &Database,
    translation: &[RelId],
    order: &[usize],
    depth: usize,
    assignment: &mut HashMap<Var, Constant>,
    chosen: &mut Vec<TupleId>,
    sink: &mut dyn FnMut(Witness) -> bool,
    running: &mut bool,
) {
    if !*running {
        return;
    }
    if depth == order.len() {
        let valuation: Valuation = q
            .vars()
            .map(|v| *assignment.get(&v).expect("all variables bound"))
            .collect();
        let witness = Witness {
            valuation,
            atom_tuples: chosen.clone(),
        };
        if !sink(witness) {
            *running = false;
        }
        return;
    }
    let atom_idx = order[depth];
    let atom = q.atom(atom_idx);
    let rel = translation[atom.relation.index()];

    // Candidate tuples: use the position index for the first already-bound
    // variable, otherwise scan the whole relation.
    let candidates: Vec<TupleId> = match atom
        .args
        .iter()
        .enumerate()
        .find_map(|(pos, v)| assignment.get(v).map(|&c| (pos, c)))
    {
        Some((pos, c)) => db.tuples_matching(rel, pos, c).to_vec(),
        None => db.tuples_of(rel).to_vec(),
    };

    'tuples: for id in candidates {
        let values = db.values_of(id);
        // Check consistency and collect newly bound variables.
        let mut newly_bound: Vec<Var> = Vec::new();
        for (pos, &var) in atom.args.iter().enumerate() {
            match assignment.get(&var) {
                Some(&c) if c != values[pos] => {
                    for v in newly_bound.drain(..) {
                        assignment.remove(&v);
                    }
                    continue 'tuples;
                }
                Some(_) => {}
                None => {
                    assignment.insert(var, values[pos]);
                    newly_bound.push(var);
                }
            }
        }
        chosen[atom_idx] = id;
        search(
            q,
            db,
            translation,
            order,
            depth + 1,
            assignment,
            chosen,
            sink,
            running,
        );
        for v in newly_bound {
            assignment.remove(&v);
        }
        if !*running {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    #[test]
    fn paper_chain_example_has_three_witnesses() {
        // Section 2.1: q_chain over D = {R(1,2), R(2,3), R(3,3)} has witnesses
        // (1,2,3), (2,3,3), (3,3,3).
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        db.insert_named("R", &[3, 3]);
        assert!(evaluate(&q, &db));
        let ws = witnesses(&q, &db);
        assert_eq!(ws.len(), 3);
        let mut vals: Vec<Vec<u64>> = ws
            .iter()
            .map(|w| w.valuation.iter().map(|c| c.value()).collect())
            .collect();
        vals.sort();
        // Variable order is x, y, z as they appear in the query.
        assert_eq!(vals, vec![vec![1, 2, 3], vec![2, 3, 3], vec![3, 3, 3]]);
    }

    #[test]
    fn witness_tuple_sets_match_the_paper() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        let t1 = db.insert_named("R", &[1, 2]);
        let t2 = db.insert_named("R", &[2, 3]);
        let t3 = db.insert_named("R", &[3, 3]);
        let ws = witnesses(&q, &db);
        let mut sets: Vec<Vec<TupleId>> = ws.iter().map(|w| w.tuple_set()).collect();
        sets.sort();
        let mut expected = vec![vec![t1, t2], vec![t2, t3], vec![t3]];
        expected.sort();
        assert_eq!(sets, expected);
    }

    #[test]
    fn unsatisfied_query_has_no_witnesses() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        assert!(!evaluate(&q, &db));
        assert!(witnesses(&q, &db).is_empty());
    }

    #[test]
    fn triangle_witnesses() {
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("S", &[2, 3]);
        db.insert_named("T", &[3, 1]);
        db.insert_named("T", &[3, 9]); // does not close the triangle
        let ws = witnesses(&q, &db);
        assert_eq!(ws.len(), 1);
        assert_eq!(
            ws[0].valuation,
            vec![Constant(1), Constant(2), Constant(3)]
        );
    }

    #[test]
    fn repeated_variable_atoms_bind_correctly() {
        let q = parse_query("R(x,x), R(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 1]);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        let ws = witnesses(&q, &db);
        // x must be 1 (the only loop); y can be 1 or 2.
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert_eq!(w.valuation[0], Constant(1));
        }
    }

    #[test]
    fn unary_relations_evaluate() {
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1]);
        db.insert_named("R", &[2]);
        db.insert_named("S", &[1, 2]);
        db.insert_named("S", &[1, 3]);
        let ws = witnesses(&q, &db);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].valuation, vec![Constant(1), Constant(2)]);
    }

    #[test]
    fn self_join_witness_can_reuse_one_tuple() {
        // The witness (3,3,3) uses R(3,3) for both atoms: its tuple set has
        // size 1, which is the crux of Example in Section 2.1.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        let t = db.insert_named("R", &[3, 3]);
        let ws = witnesses(&q, &db);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].atom_tuples, vec![t, t]);
        assert_eq!(ws[0].tuple_set(), vec![t]);
    }

    #[test]
    fn exogenous_atoms_still_join() {
        let q = parse_query("A(x), R^x(x,y), B(y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("A", &[1]);
        db.insert_named("R", &[1, 2]);
        db.insert_named("B", &[2]);
        assert!(evaluate(&q, &db));
        assert_eq!(witnesses(&q, &db).len(), 1);
    }

    #[test]
    fn evaluation_scales_to_moderate_cross_products() {
        // 30x30 joins through a shared middle value; ensure enumeration
        // produces the full cross product without issue.
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for i in 0..30u64 {
            db.insert_named("R", &[i, 1000]);
            db.insert_named("S", &[1000, 2000 + i]);
        }
        let ws = witnesses(&q, &db);
        assert_eq!(ws.len(), 900);
    }

    #[test]
    fn empty_query_is_never_satisfied() {
        // A query with no atoms is outside the paper's scope; we treat it as
        // unsatisfiable rather than vacuously true.
        let q = cq::Query::builder().build();
        let db = Database::new(q.schema().clone());
        assert!(!evaluate(&q, &db));
    }
}
