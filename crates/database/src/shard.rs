//! Partitioning instances into join-connected shards.
//!
//! Resilience decomposes over the *data*: two tuples that share no constant
//! (directly or transitively) can never appear in the same witness of a
//! connected query, so splitting an instance along its constant-connected
//! components splits the witness hypergraph into disjoint pieces that can be
//! solved independently and merged (`resilience_core::shard` does the
//! merging; this module does the partitioning).
//!
//! Two entry points:
//!
//! * [`partition`] / [`extract`] — partition a resident [`TupleStore`] into
//!   `K` shards by union–find over shared constants; each shard is a
//!   stand-alone [`crate::FrozenDb`] plus the map back to original
//!   [`crate::TupleId`]s.
//! * [`plan_stream`] / [`build_shard`] / [`write_shard_snapshots`] — the
//!   bounded-memory pipeline for instances that never fit in RAM: the tuple
//!   stream is replayed (it is a deterministic generator or a re-readable
//!   file), pass 0 union-finds constants in O(distinct constants) memory,
//!   and each subsequent pass materializes and freezes *one* shard —
//!   at no point is more than one shard resident.
//!
//! Grouping is by shared constants at **any** position of **any** relation.
//! That is coarser than any particular query's join structure — two tuples
//! the query would never join may still land in one component — and
//! coarseness is the safe direction: witnesses of a connected query always
//! stay within one shard, for *every* query over the instance, so one
//! partition serves the whole query catalogue.

use crate::fx::FxHashMap;
use crate::instance::Database;
use crate::snapshot::{self, SnapshotError, WriteOptions};
use crate::store::TupleStore;
use crate::tuple::{Constant, TupleId};
use cq::{RelId, Schema};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Maximum arity a [`StreamTuple`] can carry inline. Covers every paper
/// query (max arity 3) with one to spare; the streaming pipeline rejects
/// wider relations rather than allocating per tuple.
pub const MAX_STREAM_ARITY: usize = 4;

/// One tuple of a replayable stream: relation plus inline values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamTuple {
    rel: RelId,
    arity: u8,
    values: [Constant; MAX_STREAM_ARITY],
}

impl StreamTuple {
    /// Packs a tuple. Panics when `values.len() > MAX_STREAM_ARITY`.
    pub fn new(rel: RelId, values: &[Constant]) -> StreamTuple {
        assert!(
            values.len() <= MAX_STREAM_ARITY,
            "streaming tuples support arity <= {MAX_STREAM_ARITY}"
        );
        let mut inline = [Constant(0); MAX_STREAM_ARITY];
        inline[..values.len()].copy_from_slice(values);
        StreamTuple {
            rel,
            arity: values.len() as u8,
            values: inline,
        }
    }

    /// The relation.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The values.
    pub fn values(&self) -> &[Constant] {
        &self.values[..self.arity as usize]
    }
}

/// Union–find over dense node ids, path-halving, smaller-root-wins (fully
/// deterministic).
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind { parent: Vec::new() }
    }

    fn make(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Smaller id becomes the root: deterministic regardless of call
        // order within a tuple.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
    }
}

/// Shared constant-component bookkeeping for both partitioning paths: maps
/// constants to union–find nodes and unions each tuple's constants. Nullary
/// tuples share one pseudo-node — they join nothing, and co-locating them
/// is safe (coarsening; see the module docs).
struct ComponentIndex {
    uf: UnionFind,
    const_node: FxHashMap<Constant, u32>,
    nullary: Option<u32>,
}

impl ComponentIndex {
    fn new() -> ComponentIndex {
        ComponentIndex {
            uf: UnionFind::new(),
            const_node: FxHashMap::default(),
            nullary: None,
        }
    }

    /// Registers one tuple's values; returns its component node.
    fn add(&mut self, values: &[Constant]) -> u32 {
        match values.first() {
            None => {
                let uf = &mut self.uf;
                *self.nullary.get_or_insert_with(|| uf.make())
            }
            Some(&first) => {
                let uf = &mut self.uf;
                let node0 = *self.const_node.entry(first).or_insert_with(|| uf.make());
                for &c in &values[1..] {
                    let uf = &mut self.uf;
                    let node = *self.const_node.entry(c).or_insert_with(|| uf.make());
                    self.uf.union(node0, node);
                }
                node0
            }
        }
    }

    /// The component root of a tuple's values (after all adds).
    fn root_of(&mut self, values: &[Constant]) -> u32 {
        match values.first() {
            None => self.nullary.expect("nullary tuples were registered"),
            Some(first) => {
                let node = self.const_node[first];
                self.uf.find(node)
            }
        }
    }
}

/// Deterministically packs `component_sizes` (indexed by a dense component
/// id, ordered by first appearance) into at most `k` bins: components
/// descending by size (first-seen order breaking ties), each into the
/// currently lightest bin (lowest index breaking ties). Returns
/// (bin per component, bin count).
fn pack_components(component_sizes: &[u64], k: usize) -> (Vec<u32>, usize) {
    let bins = k.clamp(1, component_sizes.len().max(1));
    let mut order: Vec<usize> = (0..component_sizes.len()).collect();
    order.sort_by_key(|&c| (std::cmp::Reverse(component_sizes[c]), c));
    let mut load = vec![0u64; bins];
    let mut assignment = vec![0u32; component_sizes.len()];
    for c in order {
        let bin = (0..bins).min_by_key(|&b| (load[b], b)).unwrap();
        load[bin] += component_sizes[c];
        assignment[c] = bin as u32;
    }
    (assignment, bins)
}

/// A partition of a resident instance: per shard, the original tuple ids in
/// ascending order.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Tuple ids per shard, ascending within each shard.
    pub shards: Vec<Vec<TupleId>>,
    /// Number of constant-connected components found.
    pub components: usize,
}

/// Partitions `db` into at most `k` shards of whole constant-connected
/// components, sizes balanced greedily. Deterministic in `(db, k)`.
pub fn partition<S: TupleStore + ?Sized>(db: &S, k: usize) -> ShardPlan {
    let n = db.num_tuples();
    let mut index = ComponentIndex::new();
    for i in 0..n as u32 {
        index.add(db.values_of(TupleId(i)));
    }
    // Dense component ids in first-appearance order, then per-tuple bins.
    let mut comp_of_root: FxHashMap<u32, u32> = FxHashMap::default();
    let mut comp_sizes: Vec<u64> = Vec::new();
    let mut tuple_comp: Vec<u32> = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let root = index.root_of(db.values_of(TupleId(i)));
        let next = comp_sizes.len() as u32;
        let comp = *comp_of_root.entry(root).or_insert(next);
        if comp == next {
            comp_sizes.push(0);
        }
        comp_sizes[comp as usize] += 1;
        tuple_comp.push(comp);
    }
    let (assignment, bins) = pack_components(&comp_sizes, k);
    let mut shards: Vec<Vec<TupleId>> = vec![Vec::new(); bins];
    for (i, &comp) in tuple_comp.iter().enumerate() {
        shards[assignment[comp as usize] as usize].push(TupleId(i as u32));
    }
    ShardPlan {
        shards,
        components: comp_sizes.len(),
    }
}

/// One shard: a stand-alone frozen instance plus the original ids of its
/// tuples (shard-local id `i` was original id `source_ids[i]`; ascending,
/// so shard-local insertion order mirrors the original).
#[derive(Clone, Debug)]
pub struct Shard {
    /// The shard instance (schema identical to the source).
    pub frozen: crate::FrozenDb,
    /// Original tuple id per shard-local tuple id.
    pub source_ids: Vec<TupleId>,
}

/// Materializes one shard of `db` from the ids `partition` produced.
pub fn extract<S: TupleStore + ?Sized>(db: &S, ids: &[TupleId]) -> Shard {
    let mut out = Database::new(db.schema().clone());
    for &id in ids {
        out.insert(db.relation_of(id), db.values_of(id));
    }
    Shard {
        frozen: out.freeze(),
        source_ids: ids.to_vec(),
    }
}

/// [`partition`] + [`extract`] for every shard.
pub fn partition_shards<S: TupleStore + ?Sized>(db: &S, k: usize) -> Vec<Shard> {
    partition(db, k)
        .shards
        .iter()
        .map(|ids| extract(db, ids))
        .collect()
}

/// A streaming partition plan: enough state to route any replayed tuple to
/// its shard without holding tuples. Memory is O(distinct constants), not
/// O(tuples).
pub struct StreamPlan {
    index: ComponentIndex,
    /// Component root → shard.
    root_shard: FxHashMap<u32, u32>,
    /// Number of shards actually used.
    pub shards: usize,
    /// Number of constant-connected components found.
    pub components: usize,
    /// Tuples seen in the planning pass (including duplicates).
    pub stream_len: u64,
    /// Tuples routed to each shard (including duplicates).
    pub shard_tuples: Vec<u64>,
}

impl StreamPlan {
    /// The shard a tuple belongs to. Total over the constants seen in the
    /// planning pass; replaying a *different* stream is a logic error and
    /// panics on unknown constants.
    pub fn shard_of(&mut self, t: &StreamTuple) -> usize {
        let root = self.index.root_of(t.values());
        self.root_shard[&root] as usize
    }
}

/// Pass 0 of the streaming pipeline: union–find over one replay of the
/// stream, then deterministic component packing into at most `k` shards.
pub fn plan_stream<I: Iterator<Item = StreamTuple>>(stream: I, k: usize) -> StreamPlan {
    let mut index = ComponentIndex::new();
    let mut stream_len = 0u64;
    // First pass records membership only; roots move as unions happen, so
    // sizes are tallied against final roots afterwards from the replayed
    // constants' nodes. To avoid a second replay here, remember each
    // tuple's *initial* node — its final root is find(node).
    let mut tuple_nodes: Vec<u32> = Vec::new();
    for t in stream {
        tuple_nodes.push(index.add(t.values()));
        stream_len += 1;
    }
    // Dense component ids in first-appearance (stream) order.
    let mut comp_of_root: FxHashMap<u32, u32> = FxHashMap::default();
    let mut comp_sizes: Vec<u64> = Vec::new();
    let mut comp_roots: Vec<u32> = Vec::new();
    for &node in &tuple_nodes {
        let root = index.uf.find(node);
        let next = comp_sizes.len() as u32;
        let comp = *comp_of_root.entry(root).or_insert(next);
        if comp == next {
            comp_sizes.push(0);
            comp_roots.push(root);
        }
        comp_sizes[comp as usize] += 1;
    }
    let (assignment, bins) = pack_components(&comp_sizes, k);
    let mut root_shard = FxHashMap::default();
    let mut shard_tuples = vec![0u64; bins];
    for (comp, (&root, &bin)) in comp_roots.iter().zip(&assignment).enumerate() {
        root_shard.insert(root, bin);
        shard_tuples[bin as usize] += comp_sizes[comp];
    }
    StreamPlan {
        index,
        root_shard,
        shards: bins,
        components: comp_sizes.len(),
        stream_len,
        shard_tuples,
    }
}

/// One materialization pass: replays the stream, keeps only shard
/// `shard_idx`, freezes it. `source_ids` are stream positions of first
/// occurrences — equal to whole-instance [`TupleId`]s whenever the stream
/// is duplicate-free (duplicates always fall into the same shard, so the
/// shard itself is still exact either way).
pub fn build_shard<I: Iterator<Item = StreamTuple>>(
    schema: &Schema,
    stream: I,
    plan: &mut StreamPlan,
    shard_idx: usize,
) -> Shard {
    let mut out = Database::new(schema.clone());
    let mut source_ids: Vec<TupleId> = Vec::new();
    for (pos, t) in stream.enumerate() {
        if plan.shard_of(&t) != shard_idx {
            continue;
        }
        let before = out.num_tuples();
        out.insert(t.rel(), t.values());
        if out.num_tuples() > before {
            source_ids.push(TupleId(pos as u32));
        }
    }
    Shard {
        frozen: out.freeze(),
        source_ids,
    }
}

/// The full bounded-memory pipeline: plan over one replay, then write one
/// shard snapshot per pass (`<prefix>-<i>.snap` under `dir`), never holding
/// more than one shard resident. `make_stream` must replay the identical
/// stream each call (a seeded generator or a re-opened file).
pub fn write_shard_snapshots<F, I>(
    schema: &Schema,
    make_stream: F,
    k: usize,
    dir: &Path,
    prefix: &str,
    labels: Option<&HashMap<String, u64>>,
) -> Result<(Vec<PathBuf>, StreamPlan), SnapshotError>
where
    F: Fn() -> I,
    I: Iterator<Item = StreamTuple>,
{
    let mut plan = plan_stream(make_stream(), k);
    let mut paths = Vec::with_capacity(plan.shards);
    std::fs::create_dir_all(dir).map_err(SnapshotError::Io)?;
    for shard_idx in 0..plan.shards {
        let shard = build_shard(schema, make_stream(), &mut plan, shard_idx);
        let path = dir.join(format!("{prefix}-{shard_idx}.snap"));
        snapshot::write(
            &path,
            &shard.frozen,
            &WriteOptions {
                labels,
                source_ids: Some(&shard.source_ids),
            },
        )?;
        paths.push(path);
    }
    Ok((paths, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    /// Two obvious components: constants {1,2,3} and {10,11,12}.
    fn two_component_db() -> Database {
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("S", &[2, 3]);
        db.insert_named("R", &[10, 11]);
        db.insert_named("S", &[11, 12]);
        db.insert_named("R", &[3, 1]);
        db
    }

    #[test]
    fn partition_finds_components_and_balances() {
        let db = two_component_db();
        let frozen = db.freeze();
        let plan = partition(&frozen, 2);
        assert_eq!(plan.components, 2);
        assert_eq!(plan.shards.len(), 2);
        let mut all: Vec<TupleId> = plan.shards.iter().flatten().copied().collect();
        all.sort();
        assert_eq!(all, (0..5).map(TupleId).collect::<Vec<_>>());
        // Components must not be split: tuples {0,1,4} share constants
        // {1,2,3}; tuples {2,3} share {10,11,12}.
        for shard in &plan.shards {
            let has_small = shard.iter().any(|t| [0, 1, 4].contains(&t.0));
            let has_large = shard.iter().any(|t| [2, 3].contains(&t.0));
            assert!(!(has_small && has_large), "split a component: {shard:?}");
        }
        // Ascending ids within each shard.
        for shard in &plan.shards {
            assert!(shard.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn partition_is_deterministic_and_caps_bins() {
        let db = two_component_db().freeze();
        let a = partition(&db, 2);
        let b = partition(&db, 2);
        assert_eq!(a.shards, b.shards);
        // More bins than components: capped, no empty shards.
        let c = partition(&db, 8);
        assert_eq!(c.shards.len(), 2);
        assert!(c.shards.iter().all(|s| !s.is_empty()));
        // k = 1 keeps everything together.
        let one = partition(&db, 1);
        assert_eq!(one.shards.len(), 1);
        assert_eq!(one.shards[0].len(), 5);
    }

    #[test]
    fn extract_preserves_values_and_source_ids() {
        let db = two_component_db();
        let frozen = db.freeze();
        let plan = partition(&frozen, 2);
        for ids in &plan.shards {
            let shard = extract(&frozen, ids);
            assert_eq!(shard.frozen.num_tuples(), ids.len());
            assert_eq!(&shard.source_ids, ids);
            for (local, &orig) in ids.iter().enumerate() {
                let local_id = TupleId(local as u32);
                assert_eq!(shard.frozen.values_of(local_id), frozen.values_of(orig));
                assert_eq!(shard.frozen.relation_of(local_id), frozen.relation_of(orig));
            }
        }
    }

    #[test]
    fn stream_plan_matches_resident_partition() {
        let db = two_component_db();
        let frozen = db.freeze();
        let schema = frozen.schema().clone();
        let stream = || {
            (0..frozen.num_tuples() as u32).map(|i| {
                let id = TupleId(i);
                StreamTuple::new(frozen.relation_of(id), frozen.values_of(id))
            })
        };
        let mut plan = plan_stream(stream(), 2);
        assert_eq!(plan.components, 2);
        assert_eq!(plan.shards, 2);
        assert_eq!(plan.stream_len, 5);
        assert_eq!(plan.shard_tuples.iter().sum::<u64>(), 5);

        let resident = partition(&frozen, 2);
        for (shard_idx, ids) in resident.shards.iter().enumerate() {
            let shard = build_shard(&schema, stream(), &mut plan, shard_idx);
            // Same deterministic packing: streaming shard i holds exactly
            // the resident plan's shard i (stream position == tuple id for
            // a replay of a resident instance).
            assert_eq!(&shard.source_ids, ids);
            let resident_shard = extract(&frozen, ids);
            assert_eq!(shard.frozen.to_string(), resident_shard.frozen.to_string());
        }
    }

    #[test]
    fn stream_snapshots_round_trip() {
        let db = two_component_db();
        let frozen = db.freeze();
        let schema = frozen.schema().clone();
        let stream = || {
            (0..frozen.num_tuples() as u32).map(|i| {
                let id = TupleId(i);
                StreamTuple::new(frozen.relation_of(id), frozen.values_of(id))
            })
        };
        let dir = std::env::temp_dir().join(format!("resil-shardsnap-{}", std::process::id()));
        let (paths, plan) = write_shard_snapshots(&schema, stream, 2, &dir, "t", None).unwrap();
        assert_eq!(paths.len(), plan.shards);
        let mut total = 0usize;
        for path in &paths {
            let snap = snapshot::load(path, &snapshot::LoadOptions::default()).unwrap();
            total += snap.db.num_tuples();
            let ids = snap.source_ids.expect("shard snapshots carry source ids");
            assert_eq!(ids.len(), snap.db.num_tuples());
        }
        assert_eq!(total, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicates_stay_in_one_shard_and_dedup() {
        let q = parse_query("R(x,y)").unwrap();
        let schema = q.schema().clone();
        let r = schema.relation_id("R").unwrap();
        let tuples = [
            StreamTuple::new(r, &[Constant(1), Constant(2)]),
            StreamTuple::new(r, &[Constant(10), Constant(11)]),
            StreamTuple::new(r, &[Constant(1), Constant(2)]), // dup of 0
        ];
        let mut plan = plan_stream(tuples.iter().copied(), 2);
        assert_eq!(plan.components, 2);
        let mut seen = 0usize;
        for idx in 0..plan.shards {
            let shard = build_shard(&schema, tuples.iter().copied(), &mut plan, idx);
            seen += shard.frozen.num_tuples();
            // Dedup: no shard holds the duplicate twice, and source ids
            // point at first occurrences.
            assert!(shard.source_ids.iter().all(|id| id.0 != 2));
        }
        assert_eq!(seen, 2);
    }
}
