//! The witness hypergraph: witnesses reduced to their deletable tuples.
//!
//! Resilience is the minimum number of *endogenous* tuples whose deletion
//! destroys every witness (Definition 1). Once the witnesses are enumerated,
//! the rest of the problem only depends on, for each witness, the set of
//! endogenous tuples it uses — a hypergraph over tuple ids. The exact solver
//! (minimum hitting set), the IJP conditions and gadget validation all work
//! on this representation.
//!
//! The hypergraph is stored as a [`WitnessIndex`]: flat CSR incidence in
//! *both* directions (witness → endogenous tuples and tuple → witnesses),
//! built by counting sort into single arenas, with the relevant tuples
//! renumbered into a dense `0..k` space. Every accessor the solvers use in
//! their inner loops — per-witness tuple sets, per-tuple witness lists,
//! participation degrees — is a borrowed slice or an `O(1)` lookup; nothing
//! hashes or scans.

use crate::eval::{witnesses, Witness};
use crate::store::TupleStore;
use crate::tuple::TupleId;
use cq::Query;
use std::collections::{HashMap, HashSet};

/// Flat CSR incidence between witnesses and the tuples they use.
///
/// One index instance covers one fixed list of witnesses over one store. Two
/// directions are materialized:
///
/// * **witness → tuples**: `set_offsets`/`set_arena` hold, for each witness,
///   the sorted, deduplicated tuple ids it uses (restricted to the tuples
///   selected by the build mask — endogenous tuples for [`WitnessSet`], all
///   tuples for the engine's deletion sessions);
/// * **tuple → witnesses**: the tuples appearing in at least one set are
///   renumbered densely (`relevant` / `dense_of`), and
///   `tup_offsets`/`tup_arena` hold, per dense tuple, the ascending list of
///   witness indices it participates in.
///
/// Invariants relied upon by consumers:
///
/// * `relevant` is sorted ascending, so dense ids are monotone in
///   [`TupleId`] and per-witness rows are sorted in *both* id spaces;
/// * per-tuple witness lists are ascending (the counting-sort fill scans
///   witnesses in order);
/// * the index never mutates — deletion-aware views are expressed by
///   *selecting* rows ([`WitnessIndex::select`]) or by live counters layered
///   on top (the engine's `SolveSession`), never by editing arenas.
#[derive(Clone, Debug)]
pub struct WitnessIndex {
    /// Size of the tuple-id space of the originating store (`|D|`).
    num_store_tuples: u32,
    /// CSR witness → tuples: row `w` is
    /// `set_arena[set_offsets[w]..set_offsets[w + 1]]`, sorted + deduped.
    set_offsets: Vec<u32>,
    set_arena: Vec<TupleId>,
    /// Tuples appearing in at least one row, ascending (dense id = position).
    relevant: Vec<TupleId>,
    /// `dense_of[t]` is the dense id of tuple `t`, or `u32::MAX`.
    dense_of: Vec<u32>,
    /// CSR tuple → witnesses: row `d` (dense) is
    /// `tup_arena[tup_offsets[d]..tup_offsets[d + 1]]`, ascending.
    tup_offsets: Vec<u32>,
    tup_arena: Vec<u32>,
    /// Number of witnesses whose row is empty (used no selected tuple).
    empty_rows: u32,
}

impl WitnessIndex {
    /// Builds the index for `witnesses`, keeping only the tuples `t` with
    /// `keep[t]` in each row. `keep.len()` must equal the store's tuple
    /// count.
    pub fn from_witnesses(witnesses: &[Witness], keep: &[bool]) -> WitnessIndex {
        let mut set_offsets = Vec::with_capacity(witnesses.len() + 1);
        let mut set_arena: Vec<TupleId> = Vec::new();
        let mut relevant_mask = vec![false; keep.len()];
        let mut empty_rows = 0u32;
        set_offsets.push(0);
        for w in witnesses {
            let row_start = set_arena.len();
            set_arena.extend(w.atom_tuples.iter().copied().filter(|t| keep[t.index()]));
            set_arena[row_start..].sort_unstable();
            // Dedup the freshly appended row in place.
            let mut write = row_start;
            for read in row_start..set_arena.len() {
                if write == row_start || set_arena[write - 1] != set_arena[read] {
                    set_arena[write] = set_arena[read];
                    write += 1;
                }
            }
            set_arena.truncate(write);
            if write == row_start {
                empty_rows += 1;
            }
            for &t in &set_arena[row_start..] {
                relevant_mask[t.index()] = true;
            }
            set_offsets.push(set_arena.len() as u32);
        }
        Self::finish(
            keep.len(),
            set_offsets,
            set_arena,
            &relevant_mask,
            empty_rows,
        )
    }

    /// Builds a new index holding only the rows in `rows` (in the given
    /// order). Used to express a deletion: surviving witnesses keep their
    /// tuple sets verbatim, and the dense renumbering + tuple → witness CSR
    /// are rebuilt over the survivors.
    pub fn select(&self, rows: &[u32]) -> WitnessIndex {
        let mut set_offsets = Vec::with_capacity(rows.len() + 1);
        let mut set_arena: Vec<TupleId> = Vec::new();
        let mut relevant_mask = vec![false; self.num_store_tuples as usize];
        let mut empty_rows = 0u32;
        set_offsets.push(0);
        for &w in rows {
            let row = self.row(w as usize);
            if row.is_empty() {
                empty_rows += 1;
            }
            set_arena.extend_from_slice(row);
            for &t in row {
                relevant_mask[t.index()] = true;
            }
            set_offsets.push(set_arena.len() as u32);
        }
        Self::finish(
            self.num_store_tuples as usize,
            set_offsets,
            set_arena,
            &relevant_mask,
            empty_rows,
        )
    }

    /// Shared tail of the builders: dense renumbering + counting-sort of the
    /// tuple → witness direction into one flat arena.
    fn finish(
        num_store_tuples: usize,
        set_offsets: Vec<u32>,
        set_arena: Vec<TupleId>,
        relevant_mask: &[bool],
        empty_rows: u32,
    ) -> WitnessIndex {
        // The mask is scanned in tuple-id order, so `relevant` is sorted and
        // dense ids are monotone in TupleId.
        let mut relevant: Vec<TupleId> = Vec::new();
        let mut dense_of = vec![u32::MAX; num_store_tuples];
        for (i, &m) in relevant_mask.iter().enumerate() {
            if m {
                dense_of[i] = relevant.len() as u32;
                relevant.push(TupleId(i as u32));
            }
        }
        // Counting sort: pass 1 counts per-tuple degrees, the prefix walk
        // turns counts into arena offsets, pass 2 places witness indices in
        // ascending witness order (rows are scanned in order both times).
        let mut tup_offsets = vec![0u32; relevant.len() + 1];
        for &t in &set_arena {
            tup_offsets[dense_of[t.index()] as usize + 1] += 1;
        }
        for i in 1..tup_offsets.len() {
            tup_offsets[i] += tup_offsets[i - 1];
        }
        let mut cursor = tup_offsets.clone();
        let mut tup_arena = vec![0u32; set_arena.len()];
        for w in 0..set_offsets.len() - 1 {
            for &t in &set_arena[set_offsets[w] as usize..set_offsets[w + 1] as usize] {
                let d = dense_of[t.index()] as usize;
                tup_arena[cursor[d] as usize] = w as u32;
                cursor[d] += 1;
            }
        }
        WitnessIndex {
            num_store_tuples: num_store_tuples as u32,
            set_offsets,
            set_arena,
            relevant,
            dense_of,
            tup_offsets,
            tup_arena,
            empty_rows,
        }
    }

    /// Number of witnesses (rows).
    pub fn num_rows(&self) -> usize {
        self.set_offsets.len() - 1
    }

    /// Size of the tuple-id space of the originating store.
    pub fn num_store_tuples(&self) -> usize {
        self.num_store_tuples as usize
    }

    /// The (sorted, deduplicated) tuples of row `w`.
    #[inline]
    pub fn row(&self, w: usize) -> &[TupleId] {
        &self.set_arena[self.set_offsets[w] as usize..self.set_offsets[w + 1] as usize]
    }

    /// Whether some row is empty (a witness using none of the selected
    /// tuples).
    pub fn has_empty_row(&self) -> bool {
        self.empty_rows > 0
    }

    /// Tuples appearing in at least one row, ascending; position = dense id.
    pub fn relevant(&self) -> &[TupleId] {
        &self.relevant
    }

    /// Dense id of `t`, or `None` when `t` appears in no row.
    #[inline]
    pub fn dense_of(&self, t: TupleId) -> Option<u32> {
        match self.dense_of.get(t.index()) {
            Some(&d) if d != u32::MAX => Some(d),
            _ => None,
        }
    }

    /// The witnesses (row indices, ascending) tuple `t` participates in.
    /// Empty when `t` appears in no row.
    #[inline]
    pub fn witnesses_of(&self, t: TupleId) -> &[u32] {
        match self.dense_of(t) {
            Some(d) => self.witnesses_of_dense(d),
            None => &[],
        }
    }

    /// The witnesses of the tuple with dense id `d`.
    #[inline]
    pub fn witnesses_of_dense(&self, d: u32) -> &[u32] {
        &self.tup_arena
            [self.tup_offsets[d as usize] as usize..self.tup_offsets[d as usize + 1] as usize]
    }

    /// In how many witnesses tuple `t` participates (`O(1)`).
    #[inline]
    pub fn degree(&self, t: TupleId) -> usize {
        self.witnesses_of(t).len()
    }
}

/// The witnesses of `D |= q` projected to endogenous tuples.
///
/// The raw witnesses stay addressable (`witnesses[i]` matches row `i` of the
/// index); the projection to deletable tuples lives in the CSR
/// [`WitnessIndex`] behind the accessors below.
#[derive(Clone, Debug)]
pub struct WitnessSet {
    /// The raw witnesses (valuations and per-atom tuples).
    pub witnesses: Vec<Witness>,
    /// CSR incidence between witnesses and their endogenous tuples.
    index: WitnessIndex,
}

impl WitnessSet {
    /// Enumerates witnesses of `db |= q` and projects each one to its
    /// endogenous tuples (the relations with at least one endogenous atom in
    /// `q`).
    pub fn build<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Self {
        Self::from_witnesses(q, db, witnesses(q, db))
    }

    /// Projects already-enumerated witnesses (e.g. produced through a shared
    /// [`crate::QueryPlan`]) to their endogenous tuples. Takes the witness
    /// vector by value so a batch caller can recycle its allocation through
    /// [`WitnessSet::into_witnesses`] afterwards.
    pub fn from_witnesses<S: TupleStore + ?Sized>(q: &Query, db: &S, ws: Vec<Witness>) -> Self {
        let endo = db.endogenous_mask(q);
        let index = WitnessIndex::from_witnesses(&ws, &endo);
        WitnessSet {
            witnesses: ws,
            index,
        }
    }

    /// Consumes the set, returning the raw witness vector (so its allocation
    /// can be reused for the next instance of a batch).
    pub fn into_witnesses(self) -> Vec<Witness> {
        self.witnesses
    }

    /// The underlying CSR incidence.
    pub fn index(&self) -> &WitnessIndex {
        &self.index
    }

    /// Number of witnesses.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// Whether there are no witnesses (i.e. `D ̸|= q`).
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// The sorted set of endogenous tuples witness `i` uses, as a borrowed
    /// CSR row.
    #[inline]
    pub fn endogenous_set(&self, i: usize) -> &[TupleId] {
        self.index.row(i)
    }

    /// Iterates the per-witness endogenous tuple sets in witness order.
    pub fn endogenous_sets(&self) -> impl Iterator<Item = &[TupleId]> + '_ {
        (0..self.len()).map(|i| self.index.row(i))
    }

    /// All endogenous tuples appearing in at least one witness, sorted
    /// ascending; the position of a tuple is its dense id.
    pub fn relevant_tuples(&self) -> &[TupleId] {
        self.index.relevant()
    }

    /// Dense id (position in [`WitnessSet::relevant_tuples`]) of `t`, or
    /// `None` when `t` participates in no witness.
    #[inline]
    pub fn dense_id_of(&self, t: TupleId) -> Option<u32> {
        self.index.dense_of(t)
    }

    /// The witnesses (indices, ascending) in which tuple `t` participates,
    /// as a borrowed CSR row (`O(degree)` to consume, `O(1)` to obtain).
    #[inline]
    pub fn witnesses_of(&self, t: TupleId) -> &[u32] {
        self.index.witnesses_of(t)
    }

    /// In how many witnesses tuple `t` participates (`O(1)`).
    #[inline]
    pub fn degree(&self, t: TupleId) -> usize {
        self.index.degree(t)
    }

    /// `true` if some witness uses no endogenous tuple at all, in which case
    /// no contingency set exists and the resilience is undefined (infinite).
    pub fn has_undeletable_witness(&self) -> bool {
        self.index.has_empty_row()
    }

    /// Does deleting the tuples in `gamma` make the query false?
    pub fn is_contingency_set(&self, gamma: &HashSet<TupleId>) -> bool {
        self.endogenous_sets()
            .all(|set| set.iter().any(|t| gamma.contains(t)))
    }

    /// The witness set of the instance with `deleted` removed: keeps exactly
    /// the witnesses none of whose tuples (endogenous *or* exogenous) are
    /// deleted. This is the deletion semantics of [`crate::Database::without`]
    /// without copying the store or re-running the join.
    pub fn without_tuples(&self, deleted: &HashSet<TupleId>) -> WitnessSet {
        let mut mask = vec![false; self.index.num_store_tuples()];
        for t in deleted {
            if t.index() < mask.len() {
                mask[t.index()] = true;
            }
        }
        self.without_mask(&mask)
    }

    /// [`WitnessSet::without_tuples`] with the deleted set given as a dense
    /// mask over the store's tuple-id space.
    pub fn without_mask(&self, deleted: &[bool]) -> WitnessSet {
        let survivors: Vec<u32> = self
            .witnesses
            .iter()
            .enumerate()
            .filter(|(_, w)| w.atom_tuples.iter().all(|t| !deleted[t.index()]))
            .map(|(i, _)| i as u32)
            .collect();
        self.select(&survivors)
    }

    /// The witness set restricted to the given witness indices (in the given
    /// order). Callers that already know which witnesses survive a deletion
    /// (the engine's sessions track this in live counters) use this instead
    /// of re-deriving liveness through [`WitnessSet::without_mask`].
    pub fn select(&self, rows: &[u32]) -> WitnessSet {
        let witnesses = rows
            .iter()
            .map(|&i| self.witnesses[i as usize].clone())
            .collect();
        let index = self.index.select(rows);
        WitnessSet { witnesses, index }
    }

    /// For each relevant tuple, how many witnesses it participates in.
    #[deprecated(
        since = "0.1.0",
        note = "use WitnessSet::degree (O(1), no HashMap build) or iterate relevant_tuples()"
    )]
    pub fn participation_counts(&self) -> HashMap<TupleId, usize> {
        self.relevant_tuples()
            .iter()
            .map(|&t| (t, self.degree(t)))
            .collect()
    }

    /// The witnesses (indices) in which tuple `t` participates.
    #[deprecated(
        since = "0.1.0",
        note = "use WitnessSet::witnesses_of (borrowed CSR row, no scan/alloc)"
    )]
    pub fn witnesses_of_tuple(&self, t: TupleId) -> Vec<usize> {
        self.witnesses_of(t).iter().map(|&w| w as usize).collect()
    }

    /// A deduplicated copy of the endogenous witness sets: repeated sets are
    /// collapsed and supersets of other sets are dropped (hitting a subset
    /// automatically hits its supersets). This is a safe preprocessing step
    /// for minimum hitting set.
    pub fn reduced_sets(&self) -> Vec<Vec<TupleId>> {
        let relevant = self.relevant_tuples();
        self.reduced_dense_sets()
            .into_iter()
            .map(|s| s.iter().map(|&d| relevant[d as usize]).collect())
            .collect()
    }

    /// [`WitnessSet::reduced_sets`] over dense tuple ids (positions in
    /// [`WitnessSet::relevant_tuples`]); the form the exact solver packs
    /// into bitsets directly.
    ///
    /// Superset dropping buckets the kept sets by their smallest element: a
    /// kept subset of a candidate must have its minimum among the candidate's
    /// elements, so only those buckets are scanned instead of every kept set
    /// (the previous implementation was `O(n²)` subset checks across all
    /// pairs, which dominated solve time on many-witness instances).
    pub fn reduced_dense_sets(&self) -> Vec<Vec<u32>> {
        let dense = &self.index.dense_of;
        let mut sets: Vec<Vec<u32>> = self
            .endogenous_sets()
            .map(|row| row.iter().map(|t| dense[t.index()]).collect())
            .collect();
        // An empty set subsumes everything (and can never be hit).
        if sets.iter().any(|s| s.is_empty()) {
            return vec![Vec::new()];
        }
        // Dense ids are monotone in TupleId, so rows are already sorted.
        sets.sort_unstable_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        sets.dedup();
        let mut kept: Vec<Vec<u32>> = Vec::new();
        // For each dense id, the kept sets whose smallest element it is.
        let mut by_min: Vec<Vec<u32>> = vec![Vec::new(); self.relevant_tuples().len()];
        'outer: for s in sets {
            for &e in &s {
                for &ki in &by_min[e as usize] {
                    let k = &kept[ki as usize];
                    if k.len() <= s.len() && k.iter().all(|t| s.binary_search(t).is_ok()) {
                        // s is a superset of an already-kept set.
                        continue 'outer;
                    }
                }
            }
            by_min[s[0] as usize].push(kept.len() as u32);
            kept.push(s);
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Database;
    use cq::parse_query;

    fn chain_setup() -> (Query, Database) {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        db.insert_named("R", &[3, 3]);
        (q, db)
    }

    #[test]
    fn builds_endogenous_sets() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        assert_eq!(ws.len(), 3);
        assert!(!ws.is_empty());
        assert!(!ws.has_undeletable_witness());
        assert_eq!(ws.relevant_tuples().len(), 3);
    }

    #[test]
    fn contingency_check_matches_deletion_semantics() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        // Deleting R(3,3) and R(1,2) destroys all witnesses.
        let t12 = db
            .lookup(db.schema().relation_id("R").unwrap(), &[1, 2])
            .unwrap();
        let t33 = db
            .lookup(db.schema().relation_id("R").unwrap(), &[3, 3])
            .unwrap();
        let gamma: HashSet<TupleId> = [t12, t33].into_iter().collect();
        assert!(ws.is_contingency_set(&gamma));
        // Deleting only R(1,2) leaves the witness (2,3,3).
        let gamma: HashSet<TupleId> = [t12].into_iter().collect();
        assert!(!ws.is_contingency_set(&gamma));
        // Cross-check against real deletion + re-evaluation.
        let smaller = db.without(&gamma);
        assert!(crate::evaluate(&q, &smaller));
    }

    #[test]
    fn exogenous_relations_are_excluded() {
        let q = parse_query("A(x), R^x(x,y), B(y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("A", &[1]);
        db.insert_named("R", &[1, 2]);
        db.insert_named("B", &[2]);
        let ws = WitnessSet::build(&q, &db);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.endogenous_set(0).len(), 2); // A(1) and B(2) only
        assert!(!ws.has_undeletable_witness());
    }

    #[test]
    fn undeletable_witness_detected() {
        let q = parse_query("R^x(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        let ws = WitnessSet::build(&q, &db);
        assert!(ws.has_undeletable_witness());
        assert!(!ws.is_contingency_set(&HashSet::new()));
    }

    #[test]
    #[allow(deprecated)]
    fn participation_counts_and_tuple_witnesses() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        let r = db.schema().relation_id("R").unwrap();
        let t2 = db.lookup(r, &[2, 3]).unwrap();
        let counts = ws.participation_counts();
        assert_eq!(counts[&t2], 2); // witnesses (1,2,3) and (2,3,3)
        assert_eq!(ws.witnesses_of_tuple(t2).len(), 2);
        assert_eq!(ws.degree(t2), 2);
        assert_eq!(ws.witnesses_of(t2).len(), 2);
    }

    #[test]
    fn csr_index_is_consistent_in_both_directions() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        // Every (witness, tuple) incidence is present in both directions.
        for (i, set) in ws.endogenous_sets().enumerate() {
            for &t in set {
                assert!(ws.witnesses_of(t).contains(&(i as u32)));
            }
        }
        for &t in ws.relevant_tuples() {
            let d = ws.dense_id_of(t).unwrap();
            assert_eq!(ws.relevant_tuples()[d as usize], t);
            for &w in ws.witnesses_of(t) {
                assert!(ws.endogenous_set(w as usize).contains(&t));
            }
            // Witness lists are ascending (deterministic CSR fill).
            assert!(ws.witnesses_of(t).windows(2).all(|p| p[0] < p[1]));
        }
        // A tuple outside every witness has no dense id and degree 0.
        assert_eq!(ws.dense_id_of(TupleId(999)), None);
        assert_eq!(ws.degree(TupleId(999)), 0);
    }

    #[test]
    fn without_tuples_matches_rebuild_after_deletion() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        let r = db.schema().relation_id("R").unwrap();
        let t33 = db.lookup(r, &[3, 3]).unwrap();
        let deleted: HashSet<TupleId> = [t33].into_iter().collect();
        let filtered = ws.without_tuples(&deleted);
        let rebuilt = WitnessSet::build(&q, &db.without(&deleted));
        assert_eq!(filtered.len(), rebuilt.len());
        assert_eq!(filtered.len(), 1); // only (1,2,3) survives
        assert_eq!(
            filtered.relevant_tuples().len(),
            rebuilt.relevant_tuples().len()
        );
        // Filtering preserves original tuple ids (rebuild does not).
        assert!(!filtered.relevant_tuples().contains(&t33));
    }

    #[test]
    fn reduced_sets_drop_supersets() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        // {R(3,3)} is a subset of {R(2,3), R(3,3)}, so the reduction keeps
        // only the singleton plus the disjoint pair {R(1,2), R(2,3)}.
        let reduced = ws.reduced_sets();
        assert_eq!(reduced.len(), 2);
        assert!(reduced.iter().any(|s| s.len() == 1));
        assert!(reduced.iter().any(|s| s.len() == 2));
    }

    #[test]
    fn reduced_sets_handle_pathological_many_sets_instances() {
        // A hub join producing ~n² witnesses whose endogenous sets are all
        // distinct pairs: the old all-pairs superset check was quadratic in
        // the number of sets; the bucketed version only scans sets sharing
        // the candidate's minimum. This must finish instantly and keep every
        // pairwise-incomparable set.
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        let n = 60u64;
        for i in 0..n {
            db.insert_named("R", &[i, 1000]);
            db.insert_named("S", &[1000, 2000 + i]);
        }
        let ws = WitnessSet::build(&q, &db);
        assert_eq!(ws.len(), (n * n) as usize);
        let reduced = ws.reduced_dense_sets();
        // All n² pair-sets are pairwise incomparable, so none is dropped.
        assert_eq!(reduced.len(), (n * n) as usize);
        // A singleton subset must still subsume its supersets: a loop tuple
        // yields a one-tuple witness through the chain query.
        let q2 = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db2 = Database::for_query(&q2);
        for i in 0..n {
            db2.insert_named("R", &[i, 1000]);
            db2.insert_named("R", &[1000, 2000 + i]);
        }
        db2.insert_named("R", &[1000, 1000]); // loop: singleton witness set
        let ws2 = WitnessSet::build(&q2, &db2);
        let reduced2 = ws2.reduced_sets();
        // The loop's singleton set subsumes every witness that passes
        // through it.
        assert!(reduced2.iter().any(|s| s.len() == 1));
        for s in &reduced2 {
            if s.len() > 1 {
                let loop_t = db2
                    .lookup(db2.schema().relation_id("R").unwrap(), &[1000, 1000])
                    .unwrap();
                assert!(!s.contains(&loop_t), "superset of the singleton kept");
            }
        }
    }

    #[test]
    fn empty_database_yields_empty_witness_set() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = Database::for_query(&q);
        let ws = WitnessSet::build(&q, &db);
        assert!(ws.is_empty());
        assert!(ws.is_contingency_set(&HashSet::new()));
    }
}
