//! The witness hypergraph: witnesses reduced to their deletable tuples.
//!
//! Resilience is the minimum number of *endogenous* tuples whose deletion
//! destroys every witness (Definition 1). Once the witnesses are enumerated,
//! the rest of the problem only depends on, for each witness, the set of
//! endogenous tuples it uses — a hypergraph over tuple ids. The exact solver
//! (minimum hitting set), the IJP conditions and gadget validation all work
//! on this representation.

use crate::eval::{witnesses, Witness};
use crate::store::TupleStore;
use crate::tuple::TupleId;
use cq::Query;
use std::collections::{HashMap, HashSet};

/// The witnesses of `D |= q` projected to endogenous tuples.
#[derive(Clone, Debug)]
pub struct WitnessSet {
    /// The raw witnesses (valuations and per-atom tuples).
    pub witnesses: Vec<Witness>,
    /// For each witness (same order), the sorted set of endogenous tuples it
    /// uses. A witness with an empty set cannot be destroyed by deletions.
    pub endogenous_sets: Vec<Vec<TupleId>>,
    /// All endogenous tuples appearing in at least one witness.
    pub relevant_tuples: Vec<TupleId>,
}

impl WitnessSet {
    /// Enumerates witnesses of `db |= q` and projects each one to its
    /// endogenous tuples (the relations with at least one endogenous atom in
    /// `q`).
    pub fn build<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Self {
        Self::from_witnesses(q, db, witnesses(q, db))
    }

    /// Projects already-enumerated witnesses (e.g. produced through a shared
    /// [`crate::QueryPlan`]) to their endogenous tuples. Takes the witness
    /// vector by value so a batch caller can recycle its allocation through
    /// [`WitnessSet::into_witnesses`] afterwards.
    pub fn from_witnesses<S: TupleStore + ?Sized>(q: &Query, db: &S, ws: Vec<Witness>) -> Self {
        let endo = db.endogenous_mask(q);
        let mut relevant_mask = vec![false; db.num_tuples()];
        let mut endogenous_sets = Vec::with_capacity(ws.len());
        for w in &ws {
            let mut set: Vec<TupleId> = w
                .atom_tuples
                .iter()
                .copied()
                .filter(|t| endo[t.index()])
                .collect();
            set.sort_unstable();
            set.dedup();
            for &t in &set {
                relevant_mask[t.index()] = true;
            }
            endogenous_sets.push(set);
        }
        // Already sorted: the mask is scanned in tuple-id order.
        let relevant_tuples: Vec<TupleId> = relevant_mask
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(TupleId(i as u32)))
            .collect();
        WitnessSet {
            witnesses: ws,
            endogenous_sets,
            relevant_tuples,
        }
    }

    /// Consumes the set, returning the raw witness vector (so its allocation
    /// can be reused for the next instance of a batch).
    pub fn into_witnesses(self) -> Vec<Witness> {
        self.witnesses
    }

    /// Number of witnesses.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// Whether there are no witnesses (i.e. `D ̸|= q`).
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// `true` if some witness uses no endogenous tuple at all, in which case
    /// no contingency set exists and the resilience is undefined (infinite).
    pub fn has_undeletable_witness(&self) -> bool {
        self.endogenous_sets.iter().any(|s| s.is_empty())
    }

    /// Does deleting the tuples in `gamma` make the query false?
    pub fn is_contingency_set(&self, gamma: &HashSet<TupleId>) -> bool {
        self.endogenous_sets
            .iter()
            .all(|set| set.iter().any(|t| gamma.contains(t)))
    }

    /// For each relevant tuple, how many witnesses it participates in.
    pub fn participation_counts(&self) -> HashMap<TupleId, usize> {
        let mut counts: HashMap<TupleId, usize> = HashMap::new();
        for set in &self.endogenous_sets {
            for &t in set {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The witnesses (indices) in which tuple `t` participates.
    pub fn witnesses_of_tuple(&self, t: TupleId) -> Vec<usize> {
        self.endogenous_sets
            .iter()
            .enumerate()
            .filter_map(|(i, set)| set.contains(&t).then_some(i))
            .collect()
    }

    /// A deduplicated copy of the endogenous witness sets: repeated sets are
    /// collapsed and supersets of other sets are dropped (hitting a subset
    /// automatically hits its supersets). This is a safe preprocessing step
    /// for minimum hitting set.
    pub fn reduced_sets(&self) -> Vec<Vec<TupleId>> {
        let mut sets: Vec<Vec<TupleId>> = self.endogenous_sets.clone();
        sets.sort_by_key(|s| s.len());
        sets.dedup();
        let mut kept: Vec<Vec<TupleId>> = Vec::new();
        'outer: for s in sets {
            for k in &kept {
                if k.iter().all(|t| s.binary_search(t).is_ok()) {
                    // s is a superset of an already-kept set.
                    continue 'outer;
                }
            }
            kept.push(s);
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Database;
    use cq::parse_query;

    fn chain_setup() -> (Query, Database) {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        db.insert_named("R", &[3, 3]);
        (q, db)
    }

    #[test]
    fn builds_endogenous_sets() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        assert_eq!(ws.len(), 3);
        assert!(!ws.is_empty());
        assert!(!ws.has_undeletable_witness());
        assert_eq!(ws.relevant_tuples.len(), 3);
    }

    #[test]
    fn contingency_check_matches_deletion_semantics() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        // Deleting R(3,3) and R(1,2) destroys all witnesses.
        let t12 = db
            .lookup(db.schema().relation_id("R").unwrap(), &[1, 2])
            .unwrap();
        let t33 = db
            .lookup(db.schema().relation_id("R").unwrap(), &[3, 3])
            .unwrap();
        let gamma: HashSet<TupleId> = [t12, t33].into_iter().collect();
        assert!(ws.is_contingency_set(&gamma));
        // Deleting only R(1,2) leaves the witness (2,3,3).
        let gamma: HashSet<TupleId> = [t12].into_iter().collect();
        assert!(!ws.is_contingency_set(&gamma));
        // Cross-check against real deletion + re-evaluation.
        let smaller = db.without(&gamma);
        assert!(crate::evaluate(&q, &smaller));
    }

    #[test]
    fn exogenous_relations_are_excluded() {
        let q = parse_query("A(x), R^x(x,y), B(y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("A", &[1]);
        db.insert_named("R", &[1, 2]);
        db.insert_named("B", &[2]);
        let ws = WitnessSet::build(&q, &db);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.endogenous_sets[0].len(), 2); // A(1) and B(2) only
        assert!(!ws.has_undeletable_witness());
    }

    #[test]
    fn undeletable_witness_detected() {
        let q = parse_query("R^x(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        let ws = WitnessSet::build(&q, &db);
        assert!(ws.has_undeletable_witness());
        assert!(!ws.is_contingency_set(&HashSet::new()));
    }

    #[test]
    fn participation_counts_and_tuple_witnesses() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        let r = db.schema().relation_id("R").unwrap();
        let t2 = db.lookup(r, &[2, 3]).unwrap();
        let counts = ws.participation_counts();
        assert_eq!(counts[&t2], 2); // witnesses (1,2,3) and (2,3,3)
        assert_eq!(ws.witnesses_of_tuple(t2).len(), 2);
    }

    #[test]
    fn reduced_sets_drop_supersets() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        // {R(3,3)} is a subset of {R(2,3), R(3,3)}, so the reduction keeps
        // only the singleton plus the disjoint pair {R(1,2), R(2,3)}.
        let reduced = ws.reduced_sets();
        assert_eq!(reduced.len(), 2);
        assert!(reduced.iter().any(|s| s.len() == 1));
        assert!(reduced.iter().any(|s| s.len() == 2));
    }

    #[test]
    fn empty_database_yields_empty_witness_set() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = Database::for_query(&q);
        let ws = WitnessSet::build(&q, &db);
        assert!(ws.is_empty());
        assert!(ws.is_contingency_set(&HashSet::new()));
    }
}
