//! The witness hypergraph: witnesses reduced to their deletable tuples.
//!
//! Resilience is the minimum number of *endogenous* tuples whose deletion
//! destroys every witness (Definition 1). Once the witnesses are enumerated,
//! the rest of the problem only depends on, for each witness, the set of
//! endogenous tuples it uses — a hypergraph over tuple ids. The exact solver
//! (minimum hitting set), the IJP conditions and gadget validation all work
//! on this representation.
//!
//! The hypergraph is stored as a [`WitnessIndex`]: flat CSR incidence in
//! *both* directions (witness → endogenous tuples and tuple → witnesses),
//! built by counting sort into single arenas, with the relevant tuples
//! renumbered into a dense `0..k` space. Every accessor the solvers use in
//! their inner loops — per-witness tuple sets, per-tuple witness lists,
//! participation degrees — is a borrowed slice or an `O(1)` lookup; nothing
//! hashes or scans.

use crate::eval::{witnesses, Witness};
use crate::store::TupleStore;
use crate::tuple::TupleId;
use cq::Query;
use std::collections::HashSet;

/// Flat CSR incidence between witnesses and the tuples they use.
///
/// One index instance covers one fixed list of witnesses over one store. Two
/// directions are materialized:
///
/// * **witness → tuples**: `set_offsets`/`set_arena` hold, for each witness,
///   the sorted, deduplicated tuple ids it uses (restricted to the tuples
///   selected by the build mask — endogenous tuples for [`WitnessSet`], all
///   tuples for the engine's deletion sessions);
/// * **tuple → witnesses**: the tuples appearing in at least one set are
///   renumbered densely (`relevant` / `dense_of`), and
///   `tup_offsets`/`tup_arena` hold, per dense tuple, the ascending list of
///   witness indices it participates in.
///
/// Invariants relied upon by consumers:
///
/// * `relevant` is sorted ascending, so dense ids are monotone in
///   [`TupleId`] and per-witness rows are sorted in *both* id spaces;
/// * per-tuple witness lists are ascending (the counting-sort fill scans
///   witnesses in order);
/// * the index never mutates — deletion-aware views are expressed by
///   *selecting* rows ([`WitnessIndex::select`]) or by live counters layered
///   on top (the engine's `SolveSession`), never by editing arenas.
#[derive(Clone, Debug)]
pub struct WitnessIndex {
    /// Size of the tuple-id space of the originating store (`|D|`).
    num_store_tuples: u32,
    /// CSR witness → tuples: row `w` is
    /// `set_arena[set_offsets[w]..set_offsets[w + 1]]`, sorted + deduped.
    set_offsets: Vec<u32>,
    set_arena: Vec<TupleId>,
    /// Tuples appearing in at least one row, ascending (dense id = position).
    relevant: Vec<TupleId>,
    /// `dense_of[t]` is the dense id of tuple `t`, or `u32::MAX`.
    dense_of: Vec<u32>,
    /// CSR tuple → witnesses: row `d` (dense) is
    /// `tup_arena[tup_offsets[d]..tup_offsets[d + 1]]`, ascending.
    tup_offsets: Vec<u32>,
    tup_arena: Vec<u32>,
    /// Number of witnesses whose row is empty (used no selected tuple).
    empty_rows: u32,
}

impl WitnessIndex {
    /// Builds the index for `witnesses`, keeping only the tuples `t` with
    /// `keep[t]` in each row. `keep.len()` must equal the store's tuple
    /// count.
    pub fn from_witnesses(witnesses: &[Witness], keep: &[bool]) -> WitnessIndex {
        let mut set_offsets = Vec::with_capacity(witnesses.len() + 1);
        let mut set_arena: Vec<TupleId> = Vec::new();
        let mut relevant_mask = vec![false; keep.len()];
        let mut empty_rows = 0u32;
        set_offsets.push(0);
        for w in witnesses {
            let row_start = set_arena.len();
            set_arena.extend(w.atom_tuples.iter().copied().filter(|t| keep[t.index()]));
            set_arena[row_start..].sort_unstable();
            // Dedup the freshly appended row in place.
            let mut write = row_start;
            for read in row_start..set_arena.len() {
                if write == row_start || set_arena[write - 1] != set_arena[read] {
                    set_arena[write] = set_arena[read];
                    write += 1;
                }
            }
            set_arena.truncate(write);
            if write == row_start {
                empty_rows += 1;
            }
            for &t in &set_arena[row_start..] {
                relevant_mask[t.index()] = true;
            }
            set_offsets.push(set_arena.len() as u32);
        }
        Self::finish(
            keep.len(),
            set_offsets,
            set_arena,
            &relevant_mask,
            empty_rows,
        )
    }

    /// Builds a new index holding only the rows in `rows` (in the given
    /// order). Used to express a deletion: surviving witnesses keep their
    /// tuple sets verbatim, and the dense renumbering + tuple → witness CSR
    /// are rebuilt over the survivors.
    pub fn select(&self, rows: &[u32]) -> WitnessIndex {
        let mut set_offsets = Vec::with_capacity(rows.len() + 1);
        let mut set_arena: Vec<TupleId> = Vec::new();
        let mut relevant_mask = vec![false; self.num_store_tuples as usize];
        let mut empty_rows = 0u32;
        set_offsets.push(0);
        for &w in rows {
            let row = self.row(w as usize);
            if row.is_empty() {
                empty_rows += 1;
            }
            set_arena.extend_from_slice(row);
            for &t in row {
                relevant_mask[t.index()] = true;
            }
            set_offsets.push(set_arena.len() as u32);
        }
        Self::finish(
            self.num_store_tuples as usize,
            set_offsets,
            set_arena,
            &relevant_mask,
            empty_rows,
        )
    }

    /// Shared tail of the builders: dense renumbering + counting-sort of the
    /// tuple → witness direction into one flat arena.
    fn finish(
        num_store_tuples: usize,
        set_offsets: Vec<u32>,
        set_arena: Vec<TupleId>,
        relevant_mask: &[bool],
        empty_rows: u32,
    ) -> WitnessIndex {
        // The mask is scanned in tuple-id order, so `relevant` is sorted and
        // dense ids are monotone in TupleId.
        let mut relevant: Vec<TupleId> = Vec::new();
        let mut dense_of = vec![u32::MAX; num_store_tuples];
        for (i, &m) in relevant_mask.iter().enumerate() {
            if m {
                dense_of[i] = relevant.len() as u32;
                relevant.push(TupleId(i as u32));
            }
        }
        // Counting sort: pass 1 counts per-tuple degrees, the prefix walk
        // turns counts into arena offsets, pass 2 places witness indices in
        // ascending witness order (rows are scanned in order both times).
        let mut tup_offsets = vec![0u32; relevant.len() + 1];
        for &t in &set_arena {
            tup_offsets[dense_of[t.index()] as usize + 1] += 1;
        }
        for i in 1..tup_offsets.len() {
            tup_offsets[i] += tup_offsets[i - 1];
        }
        let mut cursor = tup_offsets.clone();
        let mut tup_arena = vec![0u32; set_arena.len()];
        for w in 0..set_offsets.len() - 1 {
            for &t in &set_arena[set_offsets[w] as usize..set_offsets[w + 1] as usize] {
                let d = dense_of[t.index()] as usize;
                tup_arena[cursor[d] as usize] = w as u32;
                cursor[d] += 1;
            }
        }
        WitnessIndex {
            num_store_tuples: num_store_tuples as u32,
            set_offsets,
            set_arena,
            relevant,
            dense_of,
            tup_offsets,
            tup_arena,
            empty_rows,
        }
    }

    /// Number of witnesses (rows).
    pub fn num_rows(&self) -> usize {
        self.set_offsets.len() - 1
    }

    /// Size of the tuple-id space of the originating store.
    pub fn num_store_tuples(&self) -> usize {
        self.num_store_tuples as usize
    }

    /// The (sorted, deduplicated) tuples of row `w`.
    #[inline]
    pub fn row(&self, w: usize) -> &[TupleId] {
        &self.set_arena[self.set_offsets[w] as usize..self.set_offsets[w + 1] as usize]
    }

    /// Whether some row is empty (a witness using none of the selected
    /// tuples).
    pub fn has_empty_row(&self) -> bool {
        self.empty_rows > 0
    }

    /// Tuples appearing in at least one row, ascending; position = dense id.
    pub fn relevant(&self) -> &[TupleId] {
        &self.relevant
    }

    /// Dense id of `t`, or `None` when `t` appears in no row.
    #[inline]
    pub fn dense_of(&self, t: TupleId) -> Option<u32> {
        match self.dense_of.get(t.index()) {
            Some(&d) if d != u32::MAX => Some(d),
            _ => None,
        }
    }

    /// The witnesses (row indices, ascending) tuple `t` participates in.
    /// Empty when `t` appears in no row.
    #[inline]
    pub fn witnesses_of(&self, t: TupleId) -> &[u32] {
        match self.dense_of(t) {
            Some(d) => self.witnesses_of_dense(d),
            None => &[],
        }
    }

    /// The witnesses of the tuple with dense id `d`.
    #[inline]
    pub fn witnesses_of_dense(&self, d: u32) -> &[u32] {
        &self.tup_arena
            [self.tup_offsets[d as usize] as usize..self.tup_offsets[d as usize + 1] as usize]
    }

    /// In how many witnesses tuple `t` participates (`O(1)`).
    #[inline]
    pub fn degree(&self, t: TupleId) -> usize {
        self.witnesses_of(t).len()
    }
}

/// The witnesses of `D |= q` projected to endogenous tuples.
///
/// The raw witnesses stay addressable (`witnesses[i]` matches row `i` of the
/// index); the projection to deletable tuples lives in the CSR
/// [`WitnessIndex`] behind the accessors below.
#[derive(Clone, Debug)]
pub struct WitnessSet {
    /// The raw witnesses (valuations and per-atom tuples).
    pub witnesses: Vec<Witness>,
    /// CSR incidence between witnesses and their endogenous tuples.
    index: WitnessIndex,
}

impl WitnessSet {
    /// Enumerates witnesses of `db |= q` and projects each one to its
    /// endogenous tuples (the relations with at least one endogenous atom in
    /// `q`).
    pub fn build<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Self {
        Self::from_witnesses(q, db, witnesses(q, db))
    }

    /// Projects already-enumerated witnesses (e.g. produced through a shared
    /// [`crate::QueryPlan`]) to their endogenous tuples. Takes the witness
    /// vector by value so a batch caller can recycle its allocation through
    /// [`WitnessSet::into_witnesses`] afterwards.
    pub fn from_witnesses<S: TupleStore + ?Sized>(q: &Query, db: &S, ws: Vec<Witness>) -> Self {
        let endo = db.endogenous_mask(q);
        let index = WitnessIndex::from_witnesses(&ws, &endo);
        WitnessSet {
            witnesses: ws,
            index,
        }
    }

    /// Consumes the set, returning the raw witness vector (so its allocation
    /// can be reused for the next instance of a batch).
    pub fn into_witnesses(self) -> Vec<Witness> {
        self.witnesses
    }

    /// The underlying CSR incidence.
    pub fn index(&self) -> &WitnessIndex {
        &self.index
    }

    /// Number of witnesses.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// Whether there are no witnesses (i.e. `D ̸|= q`).
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// The sorted set of endogenous tuples witness `i` uses, as a borrowed
    /// CSR row.
    #[inline]
    pub fn endogenous_set(&self, i: usize) -> &[TupleId] {
        self.index.row(i)
    }

    /// Iterates the per-witness endogenous tuple sets in witness order.
    pub fn endogenous_sets(&self) -> impl Iterator<Item = &[TupleId]> + '_ {
        (0..self.len()).map(|i| self.index.row(i))
    }

    /// All endogenous tuples appearing in at least one witness, sorted
    /// ascending; the position of a tuple is its dense id.
    pub fn relevant_tuples(&self) -> &[TupleId] {
        self.index.relevant()
    }

    /// Dense id (position in [`WitnessSet::relevant_tuples`]) of `t`, or
    /// `None` when `t` participates in no witness.
    #[inline]
    pub fn dense_id_of(&self, t: TupleId) -> Option<u32> {
        self.index.dense_of(t)
    }

    /// The witnesses (indices, ascending) in which tuple `t` participates,
    /// as a borrowed CSR row (`O(degree)` to consume, `O(1)` to obtain).
    #[inline]
    pub fn witnesses_of(&self, t: TupleId) -> &[u32] {
        self.index.witnesses_of(t)
    }

    /// In how many witnesses tuple `t` participates (`O(1)`).
    #[inline]
    pub fn degree(&self, t: TupleId) -> usize {
        self.index.degree(t)
    }

    /// `true` if some witness uses no endogenous tuple at all, in which case
    /// no contingency set exists and the resilience is undefined (infinite).
    pub fn has_undeletable_witness(&self) -> bool {
        self.index.has_empty_row()
    }

    /// Does deleting the tuples in `gamma` make the query false?
    pub fn is_contingency_set(&self, gamma: &HashSet<TupleId>) -> bool {
        self.endogenous_sets()
            .all(|set| set.iter().any(|t| gamma.contains(t)))
    }

    /// The witness set of the instance with `deleted` removed: keeps exactly
    /// the witnesses none of whose tuples (endogenous *or* exogenous) are
    /// deleted. This is the deletion semantics of [`crate::Database::without`]
    /// without copying the store or re-running the join.
    pub fn without_tuples(&self, deleted: &HashSet<TupleId>) -> WitnessSet {
        let mut mask = vec![false; self.index.num_store_tuples()];
        for t in deleted {
            if t.index() < mask.len() {
                mask[t.index()] = true;
            }
        }
        self.without_mask(&mask)
    }

    /// [`WitnessSet::without_tuples`] with the deleted set given as a dense
    /// mask over the store's tuple-id space.
    pub fn without_mask(&self, deleted: &[bool]) -> WitnessSet {
        let survivors: Vec<u32> = self
            .witnesses
            .iter()
            .enumerate()
            .filter(|(_, w)| w.atom_tuples.iter().all(|t| !deleted[t.index()]))
            .map(|(i, _)| i as u32)
            .collect();
        self.select(&survivors)
    }

    /// The witness set restricted to the given witness indices (in the given
    /// order). Callers that already know which witnesses survive a deletion
    /// (the engine's sessions track this in live counters) use this instead
    /// of re-deriving liveness through [`WitnessSet::without_mask`].
    pub fn select(&self, rows: &[u32]) -> WitnessSet {
        let witnesses = rows
            .iter()
            .map(|&i| self.witnesses[i as usize].clone())
            .collect();
        let index = self.index.select(rows);
        WitnessSet { witnesses, index }
    }

    /// A borrowed view of every witness (see [`WitnessView`]).
    pub fn view(&self) -> WitnessView<'_> {
        WitnessView::full(self)
    }

    /// The reduced witness sets (deduplicated, supersets dropped) as a fresh
    /// CSR [`ReducedSets`]. Repeated solvers should prefer
    /// [`WitnessView::reduced_into`] with caller-owned buffers; this
    /// convenience allocates its own.
    pub fn reduced(&self) -> ReducedSets {
        let mut out = ReducedSets::default();
        self.view()
            .reduced_into(&mut out, &mut ReducedScratch::default());
        out
    }
}

/// A borrowed view of a [`WitnessSet`], optionally restricted to a subset of
/// its witness rows.
///
/// The engine's deletion sessions know which witnesses survive the current
/// deletion state (live counters); this view lets every solver iterate just
/// those rows *in place* — no witness cloning, no index rebuild, no
/// re-derivation of liveness. Dense tuple ids of a live view stay those of
/// the **full** witness set (`relevant_tuples()` is unchanged): deleted
/// tuples simply appear in no selected row, so solvers pay at most a few
/// unused bitset slots instead of a renumbering pass.
#[derive(Clone, Copy, Debug)]
pub struct WitnessView<'a> {
    ws: &'a WitnessSet,
    /// Selected witness rows, ascending; `None` selects every row.
    rows: Option<&'a [u32]>,
}

impl<'a> WitnessView<'a> {
    /// A view of every witness of `ws`.
    pub fn full(ws: &'a WitnessSet) -> WitnessView<'a> {
        WitnessView { ws, rows: None }
    }

    /// A view restricted to the given witness rows (in the given order).
    pub fn live(ws: &'a WitnessSet, rows: &'a [u32]) -> WitnessView<'a> {
        WitnessView {
            ws,
            rows: Some(rows),
        }
    }

    /// Number of selected witnesses.
    pub fn len(&self) -> usize {
        match self.rows {
            Some(rows) => rows.len(),
            None => self.ws.len(),
        }
    }

    /// Whether no witness is selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The selected row indices, ascending.
    pub fn row_indices(&self) -> impl Iterator<Item = u32> + 'a {
        let all = self.rows.is_none();
        let total = self.ws.len() as u32;
        self.rows
            .unwrap_or(&[])
            .iter()
            .copied()
            .chain(0..if all { total } else { 0 })
    }

    /// The selected raw witnesses, in row order.
    pub fn witnesses(&self) -> impl Iterator<Item = &'a Witness> + 'a {
        let ws = self.ws;
        self.row_indices().map(move |w| &ws.witnesses[w as usize])
    }

    /// The selected per-witness endogenous tuple sets (borrowed CSR rows).
    pub fn endogenous_sets(&self) -> impl Iterator<Item = &'a [TupleId]> + 'a {
        let ws = self.ws;
        self.row_indices().map(move |w| ws.index.row(w as usize))
    }

    /// The full set's relevant tuples (a superset of the live view's; dense
    /// ids index into this slice).
    pub fn relevant_tuples(&self) -> &'a [TupleId] {
        self.ws.relevant_tuples()
    }

    /// Dense id of `t` in the full set's dense space.
    #[inline]
    pub fn dense_id_of(&self, t: TupleId) -> Option<u32> {
        self.ws.dense_id_of(t)
    }

    /// `true` if some selected witness uses no endogenous tuple.
    pub fn has_undeletable_witness(&self) -> bool {
        match self.rows {
            None => self.ws.has_undeletable_witness(),
            Some(rows) => rows
                .iter()
                .any(|&w| self.ws.index.row(w as usize).is_empty()),
        }
    }

    /// Builds the reduced witness sets of the view into `out`, reusing the
    /// caller's `scratch` buffers: repeated sets are collapsed and supersets
    /// of other sets are dropped (hitting a subset automatically hits its
    /// supersets), a safe preprocessing step for minimum hitting set.
    ///
    /// Output sets are sorted ascending in dense-id space and ordered by
    /// `(len, lexicographic)`; a witness with an empty endogenous set yields
    /// the single unhittable empty set. After the first call on comparable
    /// sizes, no buffer grows — a session step performs zero per-witness
    /// allocation.
    ///
    /// Superset dropping buckets the kept sets by their smallest element: a
    /// kept subset of a candidate must have its minimum among the
    /// candidate's elements, so only those buckets are scanned instead of
    /// every kept set (an earlier implementation was `O(n²)` subset checks
    /// across all pairs, which dominated solve time on many-witness
    /// instances).
    pub fn reduced_into(&self, out: &mut ReducedSets, scratch: &mut ReducedScratch) {
        let index = &self.ws.index;
        let universe = index.relevant.len();
        out.clear(universe);

        // Candidate rows in dense-id space (rows are sorted in TupleId
        // order and dense ids are monotone, so they stay sorted).
        scratch.row_offsets.clear();
        scratch.row_offsets.push(0);
        scratch.row_arena.clear();
        for row in self.endogenous_sets() {
            if row.is_empty() {
                // An empty set subsumes everything (and can never be hit).
                out.clear(universe);
                out.offsets.push(0);
                return;
            }
            scratch
                .row_arena
                .extend(row.iter().map(|t| index.dense_of[t.index()]));
            scratch.row_offsets.push(scratch.row_arena.len() as u32);
        }
        let n = scratch.row_offsets.len() - 1;
        let row = |i: u32| -> &[u32] {
            &scratch.row_arena[scratch.row_offsets[i as usize] as usize
                ..scratch.row_offsets[i as usize + 1] as usize]
        };

        // Visit candidates smallest-first, lexicographic within a length.
        scratch.order.clear();
        scratch.order.extend(0..n as u32);
        scratch.order.sort_unstable_by(|&a, &b| {
            row(a)
                .len()
                .cmp(&row(b).len())
                .then_with(|| row(a).cmp(row(b)))
        });

        // Per dense id, an intrusive chain of the kept sets whose smallest
        // element it is (`u32::MAX` terminates).
        scratch.bucket_head.clear();
        scratch.bucket_head.resize(universe, u32::MAX);
        scratch.bucket_next.clear();

        'outer: for &i in &scratch.order {
            let s = row(i);
            for &e in s {
                let mut ki = scratch.bucket_head[e as usize];
                while ki != u32::MAX {
                    let k = out.set(ki as usize);
                    if k.len() <= s.len() && k.iter().all(|t| s.binary_search(t).is_ok()) {
                        // s is a superset (or duplicate) of a kept set.
                        continue 'outer;
                    }
                    ki = scratch.bucket_next[ki as usize];
                }
            }
            let kept = out.len() as u32;
            scratch.bucket_next.push(scratch.bucket_head[s[0] as usize]);
            scratch.bucket_head[s[0] as usize] = kept;
            out.arena.extend_from_slice(s);
            out.offsets.push(out.arena.len() as u32);
        }
    }
}

/// Reduced witness sets in one flat CSR arena over dense tuple ids
/// (positions in [`WitnessSet::relevant_tuples`]).
///
/// This is the form every hitting-set style solver consumes: sets are
/// borrowed slices of a single `u32` arena, sorted ascending, smallest sets
/// first. Built by [`WitnessView::reduced_into`] (reusable buffers) or
/// [`WitnessSet::reduced`] (fresh allocation).
#[derive(Clone, Debug, Default)]
pub struct ReducedSets {
    /// Row `i` is `arena[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    arena: Vec<u32>,
    /// Size of the dense tuple space the ids index into.
    universe: u32,
}

impl ReducedSets {
    /// Number of reduced sets.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether there are no reduced sets (the query is already false).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the dense tuple space (`relevant_tuples().len()` of the
    /// originating witness set).
    pub fn universe(&self) -> usize {
        self.universe as usize
    }

    /// The `i`-th reduced set (sorted dense ids).
    #[inline]
    pub fn set(&self, i: usize) -> &[u32] {
        &self.arena[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates the reduced sets in order (smallest first).
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len()).map(|i| self.set(i))
    }

    /// `true` if some set is empty: no hitting set exists (the resilience is
    /// undefined / infinite). Sets are ordered smallest-first, so only the
    /// first needs checking.
    pub fn has_unhittable_set(&self) -> bool {
        !self.is_empty() && self.set(0).is_empty()
    }

    /// Empties the container and re-targets it at a `universe`-sized dense
    /// space (allocations are kept).
    pub fn clear(&mut self, universe: usize) {
        self.offsets.clear();
        self.offsets.push(0);
        self.arena.clear();
        self.universe = universe as u32;
    }

    /// Builds directly from explicit dense-id sets — a test/bench helper; no
    /// dedup or superset dropping is applied. Every id must be `< universe`
    /// and each set sorted ascending.
    pub fn from_sets<I, S>(sets: I, universe: usize) -> ReducedSets
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u32]>,
    {
        let mut out = ReducedSets::default();
        out.clear(universe);
        for s in sets {
            let s = s.as_ref();
            debug_assert!(s.windows(2).all(|p| p[0] < p[1]), "sets must be sorted");
            debug_assert!(s.iter().all(|&e| (e as usize) < universe));
            out.arena.extend_from_slice(s);
            out.offsets.push(out.arena.len() as u32);
        }
        out
    }
}

/// Deletion-aware reduced-set maintenance for a solve session.
///
/// Built **once** from the full witness family: the distinct endogenous sets
/// are deduplicated and stored sorted by `(len, lexicographic)` — exactly
/// the candidate visit order of [`WitnessView::reduced_into`] — together
/// with a witness → distinct-set map. The session then reports witness
/// deaths/revivals ([`ReducedSetsLive::note_dead`] /
/// [`ReducedSetsLive::note_live`]) and this structure maintains a *live
/// support counter* per distinct set plus a tombstoned id list with periodic
/// compaction, instead of re-copying and re-sorting every live witness row
/// on every step.
///
/// [`ReducedSetsLive::live_reduced_into`] then produces output
/// **byte-identical** to `WitnessView::reduced_into` over the live view: the
/// live distinct sets are visited in the same global `(len, lex)` order and
/// run through the same bucketed superset-dropping, so downstream exact
/// searches behave identically — only the per-step copy of every witness
/// row and the `O(n log n)` sort are gone.
#[derive(Clone, Debug, Default)]
pub struct ReducedSetsLive {
    /// Distinct endogenous sets of the *full* family (dense-id CSR, sorted
    /// ascending within a set, sets ordered by `(len, lex)`).
    sets: ReducedSets,
    /// Witness row → distinct-set id.
    set_of_witness: Vec<u32>,
    /// Per distinct set: number of live witnesses carrying it.
    support: Vec<u32>,
    /// Distinct-set ids present at the last rebuild/compaction, ascending.
    /// May contain up to `stale` tombstones (ids whose support dropped to
    /// zero since); scans skip them.
    live_ids: Vec<u32>,
    /// Per distinct set: whether its id is currently in `live_ids`.
    in_live: Vec<bool>,
    /// Tombstones currently in `live_ids`.
    stale: usize,
    /// A dead set was revived after compaction dropped its id; `live_ids`
    /// must be rebuilt from the support counters.
    needs_rebuild: bool,
    /// Number of compactions performed (observability; surfaced through the
    /// session solve stats).
    compactions: u64,
}

impl ReducedSetsLive {
    /// Builds the structure from the full witness family, with every witness
    /// initially live.
    pub fn build(ws: &WitnessSet) -> ReducedSetsLive {
        let index = &ws.index;
        let universe = index.relevant.len();
        let n = ws.len();
        // Sort witness rows by (len, lex) in dense-id space, then walk in
        // order collapsing duplicates into distinct-set ids.
        let row = |i: u32| index.row(i as usize);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            row(a)
                .len()
                .cmp(&row(b).len())
                .then_with(|| row(a).cmp(row(b)))
        });
        let mut sets = ReducedSets::default();
        sets.clear(universe);
        let mut set_of_witness = vec![0u32; n];
        let mut support: Vec<u32> = Vec::new();
        for &w in &order {
            let r = row(w);
            let is_dup = !support.is_empty() && {
                let last = sets.set(support.len() - 1);
                last.len() == r.len()
                    && last
                        .iter()
                        .zip(r)
                        .all(|(&d, t)| d == index.dense_of[t.index()])
            };
            if !is_dup {
                sets.arena
                    .extend(r.iter().map(|t| index.dense_of[t.index()]));
                sets.offsets.push(sets.arena.len() as u32);
                support.push(0);
            }
            let id = support.len() as u32 - 1;
            set_of_witness[w as usize] = id;
            support[id as usize] += 1;
        }
        let live_ids: Vec<u32> = (0..support.len() as u32).collect();
        let in_live = vec![true; support.len()];
        ReducedSetsLive {
            sets,
            set_of_witness,
            support,
            live_ids,
            in_live,
            stale: 0,
            needs_rebuild: false,
            compactions: 0,
        }
    }

    /// Records that witness row `w` died (its live counter went 0 → 1 dead
    /// hits in the session). Tombstones the distinct set when its last
    /// supporting witness dies; compacts the id list when more than half of
    /// it (and at least 16 entries) are tombstones.
    pub fn note_dead(&mut self, w: u32) {
        let id = self.set_of_witness[w as usize] as usize;
        self.support[id] -= 1;
        if self.support[id] == 0 {
            self.stale += 1;
            if self.stale > 16.max(self.live_ids.len() / 2) {
                self.compact();
            }
        }
    }

    /// Records that witness row `w` came back to life. Reviving a set whose
    /// id was already compacted away schedules a full id-list rebuild
    /// (performed immediately — restores are rare relative to scans).
    pub fn note_live(&mut self, w: u32) {
        let id = self.set_of_witness[w as usize] as usize;
        self.support[id] += 1;
        if self.support[id] == 1 {
            if self.in_live[id] {
                self.stale -= 1;
            } else {
                self.needs_rebuild = true;
            }
        }
        if self.needs_rebuild {
            self.rebuild();
        }
    }

    /// Returns the structure to the all-live state (session `reset`).
    pub fn reset_all_live(&mut self) {
        self.support.iter_mut().for_each(|s| *s = 0);
        for &id in &self.set_of_witness {
            self.support[id as usize] += 1;
        }
        self.live_ids.clear();
        self.live_ids.extend(0..self.support.len() as u32);
        self.in_live.iter_mut().for_each(|b| *b = true);
        self.stale = 0;
        self.needs_rebuild = false;
    }

    /// Number of id-list compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    fn compact(&mut self) {
        let support = &self.support;
        let in_live = &mut self.in_live;
        self.live_ids.retain(|&id| {
            let keep = support[id as usize] > 0;
            if !keep {
                in_live[id as usize] = false;
            }
            keep
        });
        self.stale = 0;
        self.compactions += 1;
    }

    fn rebuild(&mut self) {
        self.live_ids.clear();
        for (id, &s) in self.support.iter().enumerate() {
            let live = s > 0;
            self.in_live[id] = live;
            if live {
                self.live_ids.push(id as u32);
            }
        }
        self.stale = 0;
        self.needs_rebuild = false;
    }

    /// Builds the reduced sets of the **live** family into `out` —
    /// byte-identical to [`WitnessView::reduced_into`] over the live view.
    /// Only the superset-dropping pass runs per step; candidate collection,
    /// deduplication and ordering were done once at build time.
    pub fn live_reduced_into(&self, out: &mut ReducedSets, scratch: &mut ReducedScratch) {
        let universe = self.sets.universe();
        out.clear(universe);
        debug_assert!(!self.needs_rebuild, "revival must have rebuilt the id list");
        scratch.bucket_head.clear();
        scratch.bucket_head.resize(universe, u32::MAX);
        scratch.bucket_next.clear();
        'outer: for &id in &self.live_ids {
            if self.support[id as usize] == 0 {
                continue; // tombstone
            }
            let s = self.sets.set(id as usize);
            if s.is_empty() {
                // An empty set subsumes everything (and can never be hit);
                // it sorts first, so nothing was emitted yet.
                debug_assert!(out.is_empty());
                out.offsets.push(0);
                return;
            }
            for &e in s {
                let mut ki = scratch.bucket_head[e as usize];
                while ki != u32::MAX {
                    let k = out.set(ki as usize);
                    if k.len() <= s.len() && k.iter().all(|t| s.binary_search(t).is_ok()) {
                        continue 'outer;
                    }
                    ki = scratch.bucket_next[ki as usize];
                }
            }
            let kept = out.len() as u32;
            scratch.bucket_next.push(scratch.bucket_head[s[0] as usize]);
            scratch.bucket_head[s[0] as usize] = kept;
            out.arena.extend_from_slice(s);
            out.offsets.push(out.arena.len() as u32);
        }
    }
}

/// Reusable buffers for [`WitnessView::reduced_into`]. One instance per
/// long-lived solver context (the engine's `SolveScratch` owns one).
#[derive(Clone, Debug, Default)]
pub struct ReducedScratch {
    /// Candidate rows as a CSR over dense ids.
    row_offsets: Vec<u32>,
    row_arena: Vec<u32>,
    /// Candidate visit order (sorted by `(len, lex)`).
    order: Vec<u32>,
    /// Per dense id, head of the kept-set chain (`u32::MAX` = empty).
    bucket_head: Vec<u32>,
    /// Per kept set, the next kept set sharing its smallest element.
    bucket_next: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Database;
    use cq::parse_query;

    fn chain_setup() -> (Query, Database) {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        db.insert_named("R", &[3, 3]);
        (q, db)
    }

    #[test]
    fn builds_endogenous_sets() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        assert_eq!(ws.len(), 3);
        assert!(!ws.is_empty());
        assert!(!ws.has_undeletable_witness());
        assert_eq!(ws.relevant_tuples().len(), 3);
    }

    #[test]
    fn contingency_check_matches_deletion_semantics() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        // Deleting R(3,3) and R(1,2) destroys all witnesses.
        let t12 = db
            .lookup(db.schema().relation_id("R").unwrap(), &[1, 2])
            .unwrap();
        let t33 = db
            .lookup(db.schema().relation_id("R").unwrap(), &[3, 3])
            .unwrap();
        let gamma: HashSet<TupleId> = [t12, t33].into_iter().collect();
        assert!(ws.is_contingency_set(&gamma));
        // Deleting only R(1,2) leaves the witness (2,3,3).
        let gamma: HashSet<TupleId> = [t12].into_iter().collect();
        assert!(!ws.is_contingency_set(&gamma));
        // Cross-check against real deletion + re-evaluation.
        let smaller = db.without(&gamma);
        assert!(crate::evaluate(&q, &smaller));
    }

    #[test]
    fn exogenous_relations_are_excluded() {
        let q = parse_query("A(x), R^x(x,y), B(y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("A", &[1]);
        db.insert_named("R", &[1, 2]);
        db.insert_named("B", &[2]);
        let ws = WitnessSet::build(&q, &db);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.endogenous_set(0).len(), 2); // A(1) and B(2) only
        assert!(!ws.has_undeletable_witness());
    }

    #[test]
    fn undeletable_witness_detected() {
        let q = parse_query("R^x(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        let ws = WitnessSet::build(&q, &db);
        assert!(ws.has_undeletable_witness());
        assert!(!ws.is_contingency_set(&HashSet::new()));
    }

    #[test]
    fn degrees_and_tuple_witnesses() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        let r = db.schema().relation_id("R").unwrap();
        let t2 = db.lookup(r, &[2, 3]).unwrap();
        assert_eq!(ws.degree(t2), 2); // witnesses (1,2,3) and (2,3,3)
        assert_eq!(ws.witnesses_of(t2).len(), 2);
    }

    #[test]
    fn csr_index_is_consistent_in_both_directions() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        // Every (witness, tuple) incidence is present in both directions.
        for (i, set) in ws.endogenous_sets().enumerate() {
            for &t in set {
                assert!(ws.witnesses_of(t).contains(&(i as u32)));
            }
        }
        for &t in ws.relevant_tuples() {
            let d = ws.dense_id_of(t).unwrap();
            assert_eq!(ws.relevant_tuples()[d as usize], t);
            for &w in ws.witnesses_of(t) {
                assert!(ws.endogenous_set(w as usize).contains(&t));
            }
            // Witness lists are ascending (deterministic CSR fill).
            assert!(ws.witnesses_of(t).windows(2).all(|p| p[0] < p[1]));
        }
        // A tuple outside every witness has no dense id and degree 0.
        assert_eq!(ws.dense_id_of(TupleId(999)), None);
        assert_eq!(ws.degree(TupleId(999)), 0);
    }

    #[test]
    fn without_tuples_matches_rebuild_after_deletion() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        let r = db.schema().relation_id("R").unwrap();
        let t33 = db.lookup(r, &[3, 3]).unwrap();
        let deleted: HashSet<TupleId> = [t33].into_iter().collect();
        let filtered = ws.without_tuples(&deleted);
        let rebuilt = WitnessSet::build(&q, &db.without(&deleted));
        assert_eq!(filtered.len(), rebuilt.len());
        assert_eq!(filtered.len(), 1); // only (1,2,3) survives
        assert_eq!(
            filtered.relevant_tuples().len(),
            rebuilt.relevant_tuples().len()
        );
        // Filtering preserves original tuple ids (rebuild does not).
        assert!(!filtered.relevant_tuples().contains(&t33));
    }

    #[test]
    fn reduced_sets_drop_supersets() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        // {R(3,3)} is a subset of {R(2,3), R(3,3)}, so the reduction keeps
        // only the singleton plus the disjoint pair {R(1,2), R(2,3)}.
        let reduced = ws.reduced();
        assert_eq!(reduced.len(), 2);
        assert_eq!(reduced.universe(), ws.relevant_tuples().len());
        assert!(!reduced.has_unhittable_set());
        // Smallest sets come first and ids stay sorted inside a set.
        assert_eq!(reduced.set(0).len(), 1);
        assert_eq!(reduced.set(1).len(), 2);
        assert!(reduced.iter().all(|s| s.windows(2).all(|p| p[0] < p[1])));
    }

    #[test]
    fn live_view_reduced_sets_match_filtered_rebuild() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        let r = db.schema().relation_id("R").unwrap();
        let t33 = db.lookup(r, &[3, 3]).unwrap();
        // Deleting R(3,3) leaves only witness (1,2,3): rows {0}.
        let live_rows = [0u32];
        let mut out = ReducedSets::default();
        let mut scratch = ReducedScratch::default();
        WitnessView::live(&ws, &live_rows).reduced_into(&mut out, &mut scratch);
        assert_eq!(out.len(), 1);
        // Dense ids of a live view index the FULL relevant list, so the
        // surviving pair maps back to the original tuples.
        let tuples: Vec<TupleId> = out
            .set(0)
            .iter()
            .map(|&d| ws.relevant_tuples()[d as usize])
            .collect();
        assert!(!tuples.contains(&t33));
        assert_eq!(tuples.len(), 2);
        // And matches what a from-scratch filtered set computes.
        let filtered = ws.without_tuples(&[t33].into_iter().collect());
        let rebuilt = filtered.reduced();
        assert_eq!(out.len(), rebuilt.len());
        assert_eq!(out.set(0).len(), rebuilt.set(0).len());
        // Scratch reuse across calls yields identical output.
        let mut out2 = ReducedSets::default();
        WitnessView::live(&ws, &live_rows).reduced_into(&mut out2, &mut scratch);
        assert_eq!(out.set(0), out2.set(0));
    }

    #[test]
    fn view_iterates_selected_rows_only() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        let full = ws.view();
        assert_eq!(full.len(), 3);
        assert!(!full.is_empty());
        assert_eq!(full.row_indices().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(full.witnesses().count(), 3);
        let rows = [1u32, 2];
        let live = WitnessView::live(&ws, &rows);
        assert_eq!(live.len(), 2);
        assert_eq!(live.row_indices().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(
            live.endogenous_sets().map(|s| s.len()).collect::<Vec<_>>(),
            vec![2, 1]
        );
        assert!(!live.has_undeletable_witness());
    }

    #[test]
    fn reduced_sets_handle_pathological_many_sets_instances() {
        // A hub join producing ~n² witnesses whose endogenous sets are all
        // distinct pairs: the old all-pairs superset check was quadratic in
        // the number of sets; the bucketed version only scans sets sharing
        // the candidate's minimum. This must finish instantly and keep every
        // pairwise-incomparable set.
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        let n = 60u64;
        for i in 0..n {
            db.insert_named("R", &[i, 1000]);
            db.insert_named("S", &[1000, 2000 + i]);
        }
        let ws = WitnessSet::build(&q, &db);
        assert_eq!(ws.len(), (n * n) as usize);
        let reduced = ws.reduced();
        // All n² pair-sets are pairwise incomparable, so none is dropped.
        assert_eq!(reduced.len(), (n * n) as usize);
        // A singleton subset must still subsume its supersets: a loop tuple
        // yields a one-tuple witness through the chain query.
        let q2 = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db2 = Database::for_query(&q2);
        for i in 0..n {
            db2.insert_named("R", &[i, 1000]);
            db2.insert_named("R", &[1000, 2000 + i]);
        }
        db2.insert_named("R", &[1000, 1000]); // loop: singleton witness set
        let ws2 = WitnessSet::build(&q2, &db2);
        let reduced2 = ws2.reduced();
        // The loop's singleton set subsumes every witness that passes
        // through it.
        assert!(reduced2.iter().any(|s| s.len() == 1));
        let loop_t = db2
            .lookup(db2.schema().relation_id("R").unwrap(), &[1000, 1000])
            .unwrap();
        let loop_d = ws2.dense_id_of(loop_t).unwrap();
        for s in reduced2.iter() {
            if s.len() > 1 {
                assert!(!s.contains(&loop_d), "superset of the singleton kept");
            }
        }
    }

    #[test]
    fn empty_database_yields_empty_witness_set() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = Database::for_query(&q);
        let ws = WitnessSet::build(&q, &db);
        assert!(ws.is_empty());
        assert!(ws.is_contingency_set(&HashSet::new()));
    }

    /// Asserts `ReducedSetsLive::live_reduced_into` output is byte-identical
    /// to a cold `reduced_into` over the same live rows.
    fn assert_live_matches_cold(ws: &WitnessSet, live: &ReducedSetsLive, live_rows: &[u32]) {
        let mut cold = ReducedSets::default();
        let mut warm = ReducedSets::default();
        let mut scratch = ReducedScratch::default();
        WitnessView::live(ws, live_rows).reduced_into(&mut cold, &mut scratch);
        live.live_reduced_into(&mut warm, &mut scratch);
        assert_eq!(cold.len(), warm.len());
        for i in 0..cold.len() {
            assert_eq!(cold.set(i), warm.set(i), "set {i} diverged");
        }
    }

    #[test]
    fn live_reduced_sets_match_cold_on_delete_restore_sequences() {
        let (q, db) = chain_setup();
        let ws = WitnessSet::build(&q, &db);
        let mut live = ReducedSetsLive::build(&ws);
        // Exhaustively check every subset of the 3 witnesses, arrived at by
        // killing/reviving rows in arbitrary order.
        let mut alive = [true; 3];
        for mask in [0b111u8, 0b011, 0b001, 0b101, 0b000, 0b110, 0b111, 0b010] {
            for w in 0..3u32 {
                let want = mask & (1 << w) != 0;
                if want != alive[w as usize] {
                    if want {
                        live.note_live(w);
                    } else {
                        live.note_dead(w);
                    }
                    alive[w as usize] = want;
                }
            }
            let rows: Vec<u32> = (0..3u32).filter(|&w| alive[w as usize]).collect();
            assert_live_matches_cold(&ws, &live, &rows);
        }
        live.reset_all_live();
        assert_live_matches_cold(&ws, &live, &[0, 1, 2]);
    }

    #[test]
    fn live_reduced_sets_compact_and_revive() {
        // A hub join with many distinct pair sets: kill most witnesses one
        // by one to force tombstone compaction, then revive some killed
        // after the compaction (exercising the id-list rebuild).
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        let n = 8u64;
        for i in 0..n {
            db.insert_named("R", &[i, 1000]);
            db.insert_named("S", &[1000, 2000 + i]);
        }
        let ws = WitnessSet::build(&q, &db);
        let total = ws.len() as u32;
        assert_eq!(total, (n * n) as u32);
        let mut live = ReducedSetsLive::build(&ws);
        let mut alive: Vec<bool> = vec![true; total as usize];
        for w in 0..total - 4 {
            live.note_dead(w);
            alive[w as usize] = false;
        }
        assert!(live.compactions() > 0, "compaction threshold never hit");
        let rows: Vec<u32> = (0..total).filter(|&w| alive[w as usize]).collect();
        assert_live_matches_cold(&ws, &live, &rows);
        // Revive rows whose ids were compacted away.
        for w in [0u32, 5, 17] {
            live.note_live(w);
            alive[w as usize] = true;
        }
        let rows: Vec<u32> = (0..total).filter(|&w| alive[w as usize]).collect();
        assert_live_matches_cold(&ws, &live, &rows);
    }

    #[test]
    fn live_reduced_sets_handle_unhittable_sets() {
        // An exogenous-only witness yields the empty endogenous set; as long
        // as it is live, the reduction is the single unhittable empty set —
        // byte-identical to the cold path's early return.
        let q = parse_query("R^x(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        let ws = WitnessSet::build(&q, &db);
        let live = ReducedSetsLive::build(&ws);
        let mut out = ReducedSets::default();
        let mut scratch = ReducedScratch::default();
        live.live_reduced_into(&mut out, &mut scratch);
        assert!(out.has_unhittable_set());
        assert_eq!(out.len(), 1);
        assert_live_matches_cold(&ws, &live, &[0]);
    }
}
