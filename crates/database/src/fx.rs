//! A fast, non-cryptographic hasher for the hot paths of the solve pipeline.
//!
//! The default `SipHash` behind `std::collections::HashMap` is DoS-resistant
//! but costs tens of cycles per key; the keys hashed on the solve hot path
//! (constants, tuple ids, small tuples of integers) are attacker-free
//! internal identifiers, so the multiply-rotate scheme used by rustc ("fx
//! hash") is the right trade. Implemented from scratch here because the
//! build environment is offline (see `vendor/README.md` for the policy).

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (the rustc algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_behave_like_std_maps() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m[&i], i * 2);
        }
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        s.insert((1, 2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        let distinct: std::collections::HashSet<u64> = (0..10_000).map(hash).collect();
        assert_eq!(distinct.len(), 10_000);
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a, h2.finish());
    }
}
